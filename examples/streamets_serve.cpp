// streamets_serve — run a query plan as a live network server: parse an
// experiment file (plan + run statements; feed lines, if any, are ignored —
// input comes from TCP), listen for wire-protocol connections (see
// src/net/wire_format.h), and execute the query against whatever the
// network delivers until the horizon passes.
//
//   $ ./streamets_serve --listen 127.0.0.1:7687 query.plan
//   $ ./streamets_serve --listen 127.0.0.1:0 --port-file /tmp/port
//         --duration 5s --metrics /tmp/serve.metrics.json query.plan
//
// Pair it with streamets_feed, which replays the same experiment file's
// feed statements over TCP.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/clock.h"
#include "common/flag_help.h"
#include "common/strings.h"
#include "exec/dfs_executor.h"
#include "exec/greedy_memory_executor.h"
#include "exec/round_robin_executor.h"
#include "exec/sharded_executor.h"
#include "metrics/stats_report.h"
#include "net/ingest_server.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "recovery/recovery_manager.h"
#include "sim/experiment_spec.h"

namespace {

const std::vector<dsms::FlagHelp> kFlags = {
    {"--listen", "HOST:PORT",
     "listen address; port 0 picks an ephemeral port"},
    {"--port-file", "PATH",
     "write the bound port as one decimal line (for scripted callers)"},
    {"--duration", "DUR",
     "serve horizon, e.g. 5s (overrides the file's run horizon)"},
    {"--frame-clock", "",
     "advance virtual time by frame arrival hints instead of wall time "
     "(deterministic replay mode)"},
    {"--wall-limit", "DUR",
     "abort if this much real time passes before the horizon (default "
     "2x duration in wall mode)"},
    {"--metrics", "PATH", "write the metrics snapshot as one JSON object"},
    {"--trace", "PATH",
     "write a Chrome trace of the run (overrides the file's trace line)"},
    {"--wal-dir", "PATH",
     "override the recovery directory of the file's wal statement"},
    {"--no-crash", "",
     "ignore the file's `crash at=` statement (the restarted run of a "
     "kill-and-recover exercise)"},
    {"--max-connections", "N",
     "admission control: reject connection N+1 with a reason frame "
     "(default 0 = unlimited)"},
    {"--memory-budget", "BYTES",
     "global ingest budget (decode buffers + pending + outboxes); at or "
     "over it new connections are rejected (default 0 = unbudgeted)"},
    {"--handshake-deadline", "DUR",
     "close accepted connections that send nothing for DUR (half-open "
     "peers; default 0 = only the idle timeout applies)"},
    {"--min-rate", "BYTES_PER_SEC",
     "slow-peer floor: connections under it degrade shed -> quarantine -> "
     "close (default 0 = off)"},
    {"--help", "", "show this message and exit"},
};

/// Signal-to-Stop bridge: SIGTERM/SIGINT make Run() return cleanly so the
/// epilogue can flush the WAL and take a final checkpoint. Stop() only sets
/// a volatile flag, so this is async-signal-safe.
dsms::IngestServer* g_server = nullptr;

void HandleShutdownSignal(int) {
  if (g_server != nullptr) g_server->Stop();
}

bool SplitHostPort(const std::string& addr, std::string* host,
                   uint16_t* port) {
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  *host = addr.substr(0, colon);
  char* end = nullptr;
  long p = std::strtol(addr.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p < 0 || p > 65535) return false;
  *port = static_cast<uint16_t>(p);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsms;

  std::string input;
  std::string listen = "127.0.0.1:0";
  std::string port_file;
  std::string metrics_path;
  std::string trace_path;
  std::string wal_dir;
  Duration duration = 0;
  Duration wall_limit = 0;
  bool frame_clock = false;
  bool no_crash = false;
  int max_connections = 0;
  uint64_t memory_budget = 0;
  Duration handshake_deadline = 0;
  uint64_t min_rate = 0;

  auto value_of = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0) {
      listen = value_of(&i);
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      port_file = value_of(&i);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_path = value_of(&i);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = value_of(&i);
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      if (!ParseDuration(value_of(&i), &duration).ok() || duration <= 0) {
        std::fprintf(stderr, "bad --duration value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--wall-limit") == 0) {
      if (!ParseDuration(value_of(&i), &wall_limit).ok() ||
          wall_limit <= 0) {
        std::fprintf(stderr, "bad --wall-limit value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--frame-clock") == 0) {
      frame_clock = true;
    } else if (std::strcmp(argv[i], "--wal-dir") == 0) {
      wal_dir = value_of(&i);
    } else if (std::strcmp(argv[i], "--no-crash") == 0) {
      no_crash = true;
    } else if (std::strcmp(argv[i], "--max-connections") == 0) {
      max_connections =
          static_cast<int>(std::strtol(value_of(&i), nullptr, 10));
      if (max_connections < 0) {
        std::fprintf(stderr, "bad --max-connections value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--memory-budget") == 0) {
      memory_budget = static_cast<uint64_t>(
          std::strtoull(value_of(&i), nullptr, 10));
    } else if (std::strcmp(argv[i], "--handshake-deadline") == 0) {
      if (!ParseDuration(value_of(&i), &handshake_deadline).ok() ||
          handshake_deadline <= 0) {
        std::fprintf(stderr, "bad --handshake-deadline value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--min-rate") == 0) {
      min_rate = static_cast<uint64_t>(
          std::strtoull(value_of(&i), nullptr, 10));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintFlagHelp(stdout, argv[0],
                    "serve a query plan over the wire-protocol ingest port",
                    kFlags);
      return 0;
    } else if (argv[i][0] != '-' && input.empty()) {
      input = argv[i];
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "usage: %s [flags] <experiment-file>; try --help\n",
                 argv[0]);
    return 2;
  }

  std::ifstream file(input);
  if (!file.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", input.c_str());
    return 1;
  }
  std::ostringstream contents;
  contents << file.rdbuf();

  // Feeds are optional here: the network, not the simulator, produces
  // input. A file shared with streamets_feed parses cleanly on both ends.
  Result<Experiment> experiment =
      ParseExperiment(contents.str(), /*require_feeds=*/false);
  if (!experiment.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  if (!trace_path.empty()) experiment->trace.path = trace_path;

  IngestServerOptions options;
  if (!SplitHostPort(listen, &options.host, &options.port)) {
    std::fprintf(stderr, "bad --listen address '%s'\n", listen.c_str());
    return 2;
  }
  options.clock_mode = frame_clock ? IngestClock::Mode::kFrameDriven
                                   : IngestClock::Mode::kWallClock;
  options.max_connections = max_connections;
  options.ingest_memory_budget = memory_budget;
  options.handshake_deadline = handshake_deadline;
  options.min_bytes_per_second = min_rate;
  options.horizon =
      duration > 0 ? duration : experiment->run.horizon;
  if (!no_crash) options.crash_at = experiment->recovery.crash_at;
  if (wall_limit > 0) {
    options.wall_limit = wall_limit;
  } else if (!frame_clock) {
    // Wall mode ties virtual to real time, so 2x horizon is a generous
    // hang guard that still cannot cut a healthy run short.
    options.wall_limit = 2 * options.horizon + 5 * kSecond;
  }

  QueryGraph* graph = experiment->plan.graph.get();
  VirtualClock clock;
  std::unique_ptr<Tracer> tracer;
  if (!experiment->trace.path.empty()) {
    tracer = std::make_unique<Tracer>(&clock, experiment->trace.capacity);
  }
  ExecConfig config;
  config.tracer = tracer.get();
  config.ets.mode = experiment->run.ets;
  config.ets.min_interval = experiment->run.ets_min_interval;
  config.watchdog.silence_horizon = experiment->run.watchdog;
  config.batch_size = experiment->run.batch;
  if (experiment->run.buffer_cap > 0) {
    graph->SetBufferBound(experiment->run.buffer_cap,
                          experiment->run.overload);
  }
  // The state store must exist BEFORE RestoreGraph: the restored manifest
  // and spilled-block descriptors claim their block files against it.
  if (experiment->storage.enabled) {
    StorageConfig storage_config;
    storage_config.mem_budget = experiment->storage.mem_budget;
    storage_config.spill_dir = experiment->storage.spill_dir;
    storage_config.granularity = experiment->storage.granularity;
    storage_config.overload = experiment->run.overload;
    Status configured = graph->ConfigureStateStore(storage_config);
    if (!configured.ok()) {
      std::fprintf(stderr, "state store error: %s\n",
                   configured.ToString().c_str());
      return 1;
    }
  }

  // Crash recovery (docs/recovery.md). Restore order matters: checkpointed
  // buffer contents must land before the executor constructor scans them to
  // seed its ready queue.
  std::unique_ptr<RecoveryManager> recovery;
  if (experiment->recovery.wal) {
    RecoveryOptions ropts;
    ropts.dir = wal_dir.empty() ? experiment->recovery.dir : wal_dir;
    ropts.wal = true;
    ropts.sync = experiment->recovery.sync;
    ropts.sync_interval_bytes = experiment->recovery.sync_interval_bytes;
    ropts.segment_bytes = experiment->recovery.segment_bytes;
    ropts.checkpoint = experiment->recovery.checkpoint;
    ropts.checkpoint_horizon = experiment->recovery.checkpoint_horizon;
    ropts.keep = experiment->recovery.keep;
    recovery = std::make_unique<RecoveryManager>(ropts);
    if (tracer != nullptr) recovery->set_tracer(tracer.get());
    Status opened = recovery->Open();
    if (!opened.ok()) {
      std::fprintf(stderr, "recovery error: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
    recovery->RestoreGraph(graph, &clock);
  }

  config.shards = experiment->run.shards;
  // Checkpoints carry per-shard executor blobs whose layout assumes the
  // deterministic schedule; the serve/recover path always runs that mode.
  config.shard_mode = ShardMode::kDeterministic;
  std::unique_ptr<Executor> executor;
  switch (experiment->run.executor) {
    case ExecutorKind::kDfs:
      if (experiment->run.shards > 1) {
        executor = std::make_unique<ShardedExecutor>(graph, &clock, config);
      } else {
        executor = std::make_unique<DfsExecutor>(graph, &clock, config);
      }
      break;
    case ExecutorKind::kRoundRobin:
      executor = std::make_unique<RoundRobinExecutor>(
          graph, &clock, config, experiment->run.quantum);
      break;
    case ExecutorKind::kGreedyMemory:
      executor =
          std::make_unique<GreedyMemoryExecutor>(graph, &clock, config);
      break;
  }
  if (recovery != nullptr) {
    recovery->RestoreExecutor(executor.get());
    Status attached = recovery->AttachSinks(graph);
    if (!attached.ok()) {
      std::fprintf(stderr, "recovery error: %s\n",
                   attached.ToString().c_str());
      return 1;
    }
  }

  // Run() serves for `horizon` from its starting clock. After a restore
  // the clock already sits at the checkpoint instant, so serve only the
  // remainder — the recovered run ends at the same absolute virtual time
  // the uninterrupted run would have.
  if (recovery != nullptr && recovery->recovered()) {
    options.horizon =
        options.horizon > clock.now() ? options.horizon - clock.now() : 0;
  }

  IngestServer server(graph, executor.get(), &clock, options);
  if (tracer != nullptr) server.AttachTracer(tracer.get());
  server.set_violation_policy(experiment->run.violations);
  if (recovery != nullptr) {
    server.AttachRecovery(recovery.get());
    if (!recovery->recovered_net_blob().empty()) {
      Status restored = server.RestoreNetState(recovery->recovered_net_blob());
      if (!restored.ok()) {
        std::fprintf(stderr, "recovery error: %s\n",
                     restored.ToString().c_str());
        return 1;
      }
    }
  }

  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start error: %s\n", status.ToString().c_str());
    return 1;
  }
  if (recovery != nullptr && recovery->recovered()) {
    status = server.ReplayRecoveredWal();
    if (!status.ok()) {
      std::fprintf(stderr, "wal replay error: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("recovered to t=%.3f s (virtual): %llu WAL frames "
                "replayed past the checkpoint\n",
                DurationToSeconds(clock.now()),
                static_cast<unsigned long long>(
                    recovery->replayed_frames()));
  }

  g_server = &server;
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  std::printf("listening on %s:%u (%s clock), horizon %.3f s\n",
              options.host.c_str(), server.port(),
              frame_clock ? "frame-driven" : "wall",
              DurationToSeconds(options.horizon));
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    if (!pf) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
    pf << server.port() << "\n";
  }

  status = server.Run();
  g_server = nullptr;
  if (status.code() == StatusCode::kAborted) {
    // Scheduled chaos crash: die the way SIGKILL would — no WAL flush, no
    // final checkpoint, no stdio teardown. Recovery must cope with exactly
    // this state.
    std::fprintf(stderr, "crash: %s\n", status.ToString().c_str());
    std::_Exit(137);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "serve error: %s\n", status.ToString().c_str());
    return 1;
  }
  if (recovery != nullptr) {
    // Graceful shutdown epilogue (horizon reached or SIGTERM/SIGINT):
    // persist everything so a restart resumes without replay loss.
    Status final_ckpt = server.CheckpointNow();
    if (!final_ckpt.ok()) {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   final_ckpt.ToString().c_str());
    }
    Status flushed = recovery->FlushWal();
    if (flushed.ok()) flushed = recovery->FlushSinks();
    if (!flushed.ok()) {
      std::fprintf(stderr, "recovery flush failed: %s\n",
                   flushed.ToString().c_str());
      return 1;
    }
  }

  ExperimentReport report;
  report.end_time = clock.now();
  for (Sink* sink : graph->sinks()) {
    SinkReport sr;
    sr.name = sink->name();
    sr.tuples = sink->data_delivered();
    sr.mean_latency_ms = sink->latency().mean_ms();
    sr.p99_latency_ms = sink->latency().p99_us() / 1000.0;
    report.sinks.push_back(std::move(sr));
  }
  report.peak_queue_total = server.queue_tracker().peak_total();
  report.ets_generated = executor->ets_generated();
  report.watchdog_ets = executor->stats().watchdog_ets;
  for (Source* source : graph->sources()) {
    if (source->degraded()) report.degraded = true;
  }
  report.shed_tuples = graph->TotalShedTuples();
  report.quarantined = server.order_validator().quarantined();
  report.dropped_late = server.order_validator().dropped();
  report.buffer_order_violations = server.order_validator().violations();
  report.max_buffer_hwm = graph->MaxBufferHighWaterMark();
  if (graph->state_store() != nullptr) {
    report.storage = graph->state_store()->stats();
  }
  report.exec = executor->stats();

  std::printf("served to t=%.3f s (virtual); %llu connections, %llu "
              "frames, %llu bytes, %llu decode errors\n",
              DurationToSeconds(report.end_time),
              static_cast<unsigned long long>(
                  server.connections_accepted()),
              static_cast<unsigned long long>(server.frames_ingested()),
              static_cast<unsigned long long>(server.bytes_received()),
              static_cast<unsigned long long>(server.decode_errors()));
  for (const SinkReport& sink : report.sinks) {
    std::printf("sink %-12s tuples=%-8llu mean_latency=%10.4f ms  "
                "p99=%10.4f ms\n",
                sink.name.c_str(),
                static_cast<unsigned long long>(sink.tuples),
                sink.mean_latency_ms, sink.p99_latency_ms);
  }
  std::printf("on-demand ETS: %llu; watchdog ETS: %llu; order violations: "
              "%llu\n",
              static_cast<unsigned long long>(report.ets_generated),
              static_cast<unsigned long long>(report.watchdog_ets),
              static_cast<unsigned long long>(
                  report.buffer_order_violations));
  std::printf("%s", OperatorStatsString(*graph).c_str());

  if (tracer != nullptr) {
    std::ofstream out(experiment->trace.path);
    if (out) {
      tracer->WriteChromeTrace(out);
      std::printf("wrote execution trace to %s\n",
                  experiment->trace.path.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n",
                   experiment->trace.path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    MetricsRegistry registry;
    report.PublishTo(&registry);
    server.PublishTo(&registry);
    if (recovery != nullptr) recovery->PublishTo(&registry);
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   metrics_path.c_str());
      return 1;
    }
    registry.PrintJson(out);
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
  return 0;
}
