// Clickstream dashboard: page views from a web frontend and a mobile app
// are unioned into one event stream and aggregated into per-page view
// counts over tumbling 10 s windows (GROUP BY page). The web feed is
// replayed from a recorded arrival trace; the mobile feed is synthetic.
//
// Demonstrates: the textual plan language end to end (union + grouped
// aggregate), trace replay, and how on-demand ETS keeps dashboard windows
// fresh when one feed goes quiet.
//
//   $ ./clickstream

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/random.h"
#include "exec/dfs_executor.h"
#include "graph/plan_parser.h"
#include "metrics/stats_report.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"
#include "sim/trace_loader.h"

namespace {

constexpr char kPlan[] = R"(
# Page-view dashboard: union two frontends, count views per page per 10s.
stream WEB ts=internal
stream MOBILE ts=internal
union EVENTS in=WEB,MOBILE
gaggregate VIEWS in=EVENTS fn=count key=0 window=10s
sink DASH in=VIEWS
)";

// A short recorded burst of web traffic (arrival times); after it ends the
// web feed goes quiet and ETS keeps the dashboard's windows closing.
constexpr char kWebTrace[] = R"(
0.4s
0.9s
1.1s
1.15s
2.3s
2.31s
3.8s
4.2s
5.0s
5.05s
5.1s
8.9s
12.5s
13.1s
17.8s
)";

}  // namespace

int main() {
  using namespace dsms;

  Result<ParsedPlan> plan = ParsePlan(kPlan);
  DSMS_CHECK_OK(plan.status());
  auto* web = dynamic_cast<Source*>(plan->Find("WEB"));
  auto* mobile = dynamic_cast<Source*>(plan->Find("MOBILE"));
  auto* dash = dynamic_cast<Sink*>(plan->Find("DASH"));
  DSMS_CHECK(web != nullptr && mobile != nullptr && dash != nullptr);

  Result<std::vector<Timestamp>> trace = ParseArrivalTrace(kWebTrace);
  DSMS_CHECK_OK(trace.status());

  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  DfsExecutor executor(plan->graph.get(), &clock, config);
  Simulation sim(plan->graph.get(), &executor, &clock);

  // Payload: [page:string]. Pages are drawn from a small zipf-ish set.
  auto page_payload = [](uint64_t seed) {
    auto rng = std::make_shared<Pcg32>(seed);
    return [rng](uint64_t, Timestamp) {
      static const char* kPages[] = {"/home", "/home", "/home", "/search",
                                     "/search", "/product/42", "/checkout"};
      return std::vector<Value>{
          Value(kPages[rng->NextBelow(7)])};
    };
  };
  sim.AddFeed(web, std::make_unique<TraceProcess>(*trace),
              page_payload(1));
  sim.AddFeed(mobile, std::make_unique<PoissonProcess>(0.8, 2),
              page_payload(2));

  dash->set_collect(true);
  sim.Run(60 * kSecond);

  std::printf("per-page view counts (10 s tumbling windows):\n");
  for (const Tuple& t : dash->collected()) {
    std::printf("  [%2llds..%2llds)  %-12s %3.0f views\n",
                static_cast<long long>(t.value(0).int64_value() / kSecond),
                static_cast<long long>(t.value(0).int64_value() / kSecond +
                                       10),
                t.value(1).string_value().c_str(), t.value(2).AsDouble());
  }
  std::printf(
      "\nwindow freshness: results appear %.2f ms (mean) after each window "
      "closes; on-demand ETS generated %llu punctuations.\n"
      "(On-demand ETS is execution-driven: a window can close at the first "
      "activation after its end, so freshness here is bounded by the feeds' "
      "arrival cadence. A dashboard needing sharper deadlines would add a "
      "periodic heartbeat — see bench/abl_aggregate for the trade-off.)\n",
      dash->latency().mean_ms(),
      static_cast<unsigned long long>(executor.ets_generated()));

  std::printf("\noperator statistics:\n");
  PrintOperatorStats(*plan->graph, std::cout);
  return 0;
}
