// Sensor fusion: a field deployment reports temperature readings over a
// lossy radio link, so readings arrive out of order (bounded disorder).
// The pipeline repairs the order with a slack Reorder operator, aggregates
// per-minute averages with a sliding window, and unions the result with a
// second (wired, in-order) sensor's aggregate stream.
//
// Demonstrates: Reorder (out-of-order repair, cf. Srivastava & Widom),
// WindowAggregate (punctuation-driven window close), punctuation flowing
// through a multi-operator pipeline, and on-demand ETS keeping the final
// union responsive.
//
//   $ ./sensor_fusion

#include <cstdio>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/random.h"
#include "exec/dfs_executor.h"
#include "graph/graph_builder.h"
#include "operators/reorder.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"

int main() {
  using namespace dsms;

  GraphBuilder builder;
  Source* radio = builder.AddSource("radio", TimestampKind::kExternal,
                                    /*skew_bound=*/2 * kSecond);
  Source* wired = builder.AddSource("wired", TimestampKind::kInternal);

  // The radio sensor's application timestamps arrive jittered; repair with
  // 2 s of slack before windowing.
  Reorder* repair = builder.AddReorder("repair", /*slack=*/2 * kSecond);
  WindowAggregate* radio_avg = builder.AddWindowAggregate(
      "radio_avg", AggKind::kAvg, /*field=*/0, /*window=*/60 * kSecond,
      /*slide=*/30 * kSecond);
  WindowAggregate* wired_avg = builder.AddWindowAggregate(
      "wired_avg", AggKind::kAvg, 0, 60 * kSecond, 30 * kSecond);
  Union* fused = builder.AddUnion("fused");
  Sink* dashboard = builder.AddSink("dashboard");

  builder.Connect(radio, repair);
  builder.Connect(repair, radio_avg);
  builder.Connect(wired, wired_avg);
  builder.Connect(radio_avg, fused);
  builder.Connect(wired_avg, fused);
  builder.Connect(fused, dashboard);

  Result<std::unique_ptr<QueryGraph>> graph = builder.Build();
  DSMS_CHECK_OK(graph.status());

  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  DfsExecutor executor(graph->get(), &clock, config);
  Simulation sim(graph->get(), &executor, &clock);

  // Temperature payloads: a slow sinusoid-ish walk, seeded.
  auto temperature = [](uint64_t seed, double base) {
    auto rng = std::make_shared<Pcg32>(seed);
    auto value = std::make_shared<double>(base);
    return [rng, value](uint64_t, Timestamp) {
      *value += rng->NextDouble(-0.1, 0.1);
      return std::vector<Value>{Value(*value)};
    };
  };
  sim.AddFeed(radio, std::make_unique<PoissonProcess>(2.0, 41),
              temperature(1, 21.0), /*jitter_seed=*/51);
  sim.AddFeed(wired, std::make_unique<PoissonProcess>(5.0, 42),
              temperature(2, 23.0));

  dashboard->set_collect(true);
  sim.Run(10 * 60 * kSecond);  // ten virtual minutes

  std::printf("fused per-30s average-temperature stream "
              "(window_start_s, avg_deg_c):\n");
  int shown = 0;
  for (const Tuple& t : dashboard->collected()) {
    if (++shown > 10) break;
    std::printf("  window@%6.1fs  avg=%.2f C\n",
                static_cast<double>(t.value(0).int64_value()) / kSecond,
                t.value(1).AsDouble());
  }
  std::printf("  ... %zu windows total\n", dashboard->collected().size());

  std::printf("\nwindow emission delay: mean %.2f ms, p99 %.2f ms "
              "(delay past each window's semantic close)\n",
              dashboard->latency().mean_ms(),
              dashboard->latency().p99_us() / 1000.0);
  std::printf("radio stragglers dropped beyond slack: %llu\n",
              static_cast<unsigned long long>(repair->late_dropped()));
  std::printf("on-demand ETS generated: %llu\n",
              static_cast<unsigned long long>(executor.ets_generated()));
  return 0;
}
