// streamets_run — execute a self-contained experiment file: a query plan
// (graph/plan_parser.h statements) plus feed/heartbeat/run statements
// (sim/experiment_spec.h). Prints per-sink latency, punctuation counters,
// and a per-operator statistics table.
//
//   $ ./streamets_run experiment.plan
//   $ ./streamets_run --demo          # run a built-in demo experiment
//   $ ./streamets_run --trace /tmp/run.trace.json experiment.plan
//   $ ./streamets_run --metrics /tmp/run.metrics.json experiment.plan
//   $ ./streamets_run --batch 64 experiment.plan
//
// --trace writes a Chrome trace-event JSON of the run (open in Perfetto;
// it overrides any `trace` statement in the file). --metrics writes the
// unified metrics snapshot as one JSON object. --batch N enables columnar
// batch execution with N rows per batch (overrides the file's `batch`
// statement; see docs/batching.md).
//
// Demo experiment (also a syntax reference):
//
//   stream FAST ts=internal
//   stream SLOW ts=internal
//   filter F1 in=FAST selectivity=0.95 seed=7
//   filter F2 in=SLOW selectivity=0.95 seed=8
//   union U in=F1,F2
//   sink OUT in=U
//   feed FAST process=poisson rate=50 seed=1
//   feed SLOW process=poisson rate=0.05 seed=2
//   run horizon=120s warmup=10s ets=on-demand

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <memory>
#include <vector>

#include "common/flag_help.h"
#include "common/strings.h"
#include "obs/metrics_registry.h"
#include "recovery/durable_sink.h"
#include "sim/experiment_spec.h"

namespace {

const std::vector<dsms::FlagHelp> kFlags = {
    {"--demo", "", "run a built-in demo experiment"},
    {"--trace", "PATH",
     "write a Chrome trace of the run (overrides the file's trace line)"},
    {"--metrics", "PATH", "write the metrics snapshot as one JSON object"},
    {"--batch", "N",
     "columnar batch execution, N rows per batch (0 = scalar; overrides "
     "the file's batch line)"},
    {"--shards", "N",
     "sharded execution with N worker shards (DFS only; overrides the "
     "file's run shards=)"},
    {"--shard-mode", "MODE",
     "deterministic|parallel shard scheduling (overrides run mode=)"},
    {"--sink-dump", "DIR",
     "write every sink's delivered tuples to DIR/sink-<name>.out, one "
     "line per tuple (byte-comparable across runs, e.g. spill vs "
     "in-memory)"},
    {"--spill-dir", "PATH",
     "override the spill directory of the file's state statement"},
    {"--mem-budget", "SIZE",
     "override the state statement's memory budget (bytes, or k/m/g "
     "suffix; 0 = never spill)"},
    {"--help", "", "show this message and exit"},
};

constexpr char kDemo[] = R"(
stream FAST ts=internal
stream SLOW ts=internal
filter F1 in=FAST selectivity=0.95 seed=7
filter F2 in=SLOW selectivity=0.95 seed=8
union U in=F1,F2
sink OUT in=U
feed FAST process=poisson rate=50 seed=1
feed SLOW process=poisson rate=0.05 seed=2
run horizon=120s warmup=10s ets=on-demand
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace dsms;

  std::string input;
  bool demo = false;
  std::string trace_path;
  std::string metrics_path;
  std::string sink_dump;
  std::string spill_dir;
  long long mem_budget = -1;
  long batch_size = -1;
  long shards = -1;
  std::string shard_mode;

  // SIZE with an optional binary k/m/g suffix, as in the `state` statement.
  auto parse_size = [](const char* text, long long* out) {
    char* end = nullptr;
    long long v = std::strtoll(text, &end, 10);
    if (end == text || v < 0) return false;
    if (*end == 'k' || *end == 'K') v <<= 10, ++end;
    else if (*end == 'm' || *end == 'M') v <<= 20, ++end;
    else if (*end == 'g' || *end == 'G') v <<= 30, ++end;
    if (*end != '\0') return false;
    *out = v;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch_size = std::strtol(argv[++i], nullptr, 10);
      if (batch_size < 0) {
        std::fprintf(stderr, "--batch must be >= 0\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtol(argv[++i], nullptr, 10);
      if (shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--sink-dump") == 0 && i + 1 < argc) {
      sink_dump = argv[++i];
    } else if (std::strcmp(argv[i], "--spill-dir") == 0 && i + 1 < argc) {
      spill_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--mem-budget") == 0 && i + 1 < argc) {
      if (!parse_size(argv[++i], &mem_budget)) {
        std::fprintf(stderr, "bad --mem-budget value\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--shard-mode") == 0 && i + 1 < argc) {
      shard_mode = argv[++i];
      if (shard_mode != "deterministic" && shard_mode != "parallel") {
        std::fprintf(stderr,
                     "--shard-mode must be deterministic or parallel\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintFlagHelp(stdout, argv[0],
                    "execute a self-contained experiment file "
                    "(plan + feed/heartbeat/run statements)",
                    kFlags);
      return 0;
    } else if (argv[i][0] != '-' && input.empty()) {
      input = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace PATH] [--metrics PATH] "
                   "<experiment-file> | --demo\n",
                   argv[0]);
      return 1;
    }
  }

  std::string text;
  if (demo) {
    text = kDemo;
    std::printf("running built-in demo experiment:\n%s\n", kDemo);
  } else if (!input.empty()) {
    std::ifstream file(input);
    if (!file.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", input.c_str());
      return 1;
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    text = contents.str();
  } else {
    std::fprintf(stderr,
                 "usage: %s [--trace PATH] [--metrics PATH] "
                 "<experiment-file> | --demo\n",
                 argv[0]);
    return 1;
  }

  Result<Experiment> experiment = ParseExperiment(text);
  if (!experiment.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  if (!trace_path.empty()) experiment->trace.path = trace_path;
  if (batch_size >= 0) {
    experiment->run.batch = static_cast<size_t>(batch_size);
  }
  if (shards >= 1) {
    if (shards > 1 && experiment->run.executor != ExecutorKind::kDfs) {
      std::fprintf(stderr, "--shards requires executor=dfs\n");
      return 1;
    }
    experiment->run.shards = static_cast<int>(shards);
  }
  if (!shard_mode.empty()) {
    experiment->run.shard_mode = shard_mode == "parallel"
                                     ? ShardMode::kParallel
                                     : ShardMode::kDeterministic;
  }
  if (!spill_dir.empty()) experiment->storage.spill_dir = spill_dir;
  if (mem_budget >= 0) {
    experiment->storage.mem_budget = static_cast<uint64_t>(mem_budget);
  }

  // Durable sink dumps (one ToString line per delivered tuple): the
  // byte-identity oracle CI uses to compare a spilling run against an
  // unlimited-memory one.
  std::vector<std::unique_ptr<DurableSink>> dumps;
  if (!sink_dump.empty()) {
    for (Sink* sink : experiment->plan.graph->sinks()) {
      auto dump = std::make_unique<DurableSink>(sink_dump, sink->name());
      Status opened = dump->Open(/*resume_offset=*/0);
      if (!opened.ok()) {
        std::fprintf(stderr, "sink dump error: %s\n",
                     opened.ToString().c_str());
        return 1;
      }
      dump->Attach(sink);
      dumps.push_back(std::move(dump));
    }
  }

  Result<ExperimentReport> report = RunExperiment(&*experiment);
  if (!report.ok()) {
    std::fprintf(stderr, "run error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  for (const auto& dump : dumps) {
    Status flushed = dump->Flush();
    if (!flushed.ok()) {
      std::fprintf(stderr, "sink dump error: %s\n",
                   flushed.ToString().c_str());
      return 1;
    }
  }

  std::printf("ran to t=%.3f s (virtual)\n",
              DurationToSeconds(report->end_time));
  for (const SinkReport& sink : report->sinks) {
    std::printf("sink %-12s tuples=%-8llu mean_latency=%10.4f ms  "
                "p99=%10.4f ms\n",
                sink.name.c_str(),
                static_cast<unsigned long long>(sink.tuples),
                sink.mean_latency_ms, sink.p99_latency_ms);
  }
  std::printf("peak buffered tuples: %lld; on-demand ETS: %llu\n",
              static_cast<long long>(report->peak_queue_total),
              static_cast<unsigned long long>(report->ets_generated));
  std::printf("executor: %s\n", report->exec.ToString().c_str());
  if (report->shards_used > 0) {
    std::printf("shards: %llu (hops=%llu, epochs=%llu)\n",
                static_cast<unsigned long long>(report->shards_used),
                static_cast<unsigned long long>(report->shard_hops),
                static_cast<unsigned long long>(report->shard_epochs));
  }
  if (experiment->storage.enabled) {
    const StorageStats& storage = report->storage;
    std::printf("state store: hot=%llu B, spilled=%llu B "
                "(spills=%llu loads=%llu evictions=%llu purged=%llu)\n",
                static_cast<unsigned long long>(storage.hot_bytes),
                static_cast<unsigned long long>(storage.spilled_bytes),
                static_cast<unsigned long long>(storage.spills),
                static_cast<unsigned long long>(storage.loads),
                static_cast<unsigned long long>(storage.evictions),
                static_cast<unsigned long long>(storage.purged_blocks));
  }
  std::printf("\n");
  std::printf("%s", report->operator_stats.c_str());
  if (report->fault_events > 0 || !report->robustness.empty()) {
    std::printf("\nfault events: %llu; watchdog ETS: %llu; shed: %llu; "
                "max arc high-water: %llu\n",
                static_cast<unsigned long long>(report->fault_events),
                static_cast<unsigned long long>(report->watchdog_ets),
                static_cast<unsigned long long>(report->shed_tuples),
                static_cast<unsigned long long>(report->max_buffer_hwm));
    std::printf("%s", report->robustness.c_str());
  }
  if (!experiment->trace.path.empty()) {
    std::printf("\nwrote execution trace to %s\n",
                experiment->trace.path.c_str());
  }
  if (!metrics_path.empty()) {
    MetricsRegistry registry;
    report->PublishTo(&registry);
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   metrics_path.c_str());
      return 1;
    }
    registry.PrintJson(out);
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
  return 0;
}
