// Quickstart: build the paper's query (two streams -> selection -> union ->
// sink) with the GraphBuilder API, run it for 30 virtual seconds under
// on-demand ETS, and print what happened.
//
//   $ ./quickstart
//
// Everything is deterministic: run it twice, get the same numbers.

#include <cstdio>
#include <memory>

#include "common/check.h"
#include "common/clock.h"
#include "exec/dfs_executor.h"
#include "graph/graph_builder.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"

int main() {
  using namespace dsms;

  // 1. Describe the query graph. Sources are internally timestamped: each
  //    tuple is stamped with the (virtual) clock when it enters the DSMS.
  GraphBuilder builder;
  Source* fast = builder.AddSource("fast", TimestampKind::kInternal);
  Source* slow = builder.AddSource("slow", TimestampKind::kInternal);
  auto* f1 = builder.AddRandomDropFilter("sel_fast", /*selectivity=*/0.95,
                                         /*seed=*/7);
  auto* f2 = builder.AddRandomDropFilter("sel_slow", 0.95, 8);
  Union* u = builder.AddUnion("union");
  Sink* out = builder.AddSink("out");
  builder.Connect(fast, f1);
  builder.Connect(slow, f2);
  builder.Connect(f1, u);
  builder.Connect(f2, u);
  builder.Connect(u, out);

  Result<std::unique_ptr<QueryGraph>> graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  std::printf("%s\n", (*graph)->ToString().c_str());

  // 2. Pick an executor. On-demand ETS (the paper's contribution) keeps the
  //    union from idle-waiting on the sparse stream.
  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  DfsExecutor executor(graph->get(), &clock, config);

  // 3. Feed it: Poisson arrivals at 50 and 0.05 tuples per second — the
  //    paper's workload — and run 30 virtual seconds.
  Simulation sim(graph->get(), &executor, &clock);
  sim.AddFeed(fast, std::make_unique<PoissonProcess>(50.0, /*seed=*/1));
  sim.AddFeed(slow, std::make_unique<PoissonProcess>(0.05, /*seed=*/2));
  sim.Run(/*end_time=*/30 * kSecond);

  // 4. Report.
  std::printf("delivered %llu tuples; mean latency %.3f ms; "
              "p99 %.3f ms\n",
              static_cast<unsigned long long>(out->data_delivered()),
              out->latency().mean_ms(),
              out->latency().p99_us() / 1000.0);
  std::printf("on-demand ETS generated: %llu; union consumed %llu "
              "punctuations\n",
              static_cast<unsigned long long>(executor.ets_generated()),
              static_cast<unsigned long long>(u->stats().punctuation_in));
  std::printf("peak buffered tuples across all arcs: %lld\n",
              static_cast<long long>(sim.queue_tracker().peak_total()));
  std::printf("executor: %s\n", executor.stats().ToString().c_str());

  // Try it yourself: set config.ets.mode = EtsMode::kNone above and watch
  // the latency jump by four orders of magnitude.
  return 0;
}
