// Network monitoring: correlate packets observed at two taps of a network
// (e.g. ingress and egress of a middlebox) with a symmetric window join on
// the flow id — the Gigascope-style workload that motivated heartbeat
// punctuation in the first place (Johnson et al., VLDB'05, the paper's [9]).
//
// The egress tap is quiet at night; without punctuation the join idle-waits
// on it and ingress packets pile up in the join's input buffer. The example
// runs the same trace under periodic heartbeats and under on-demand ETS and
// prints matched-pair latency plus buffer/window occupancy.
//
//   $ ./network_monitor

#include <cstdio>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/random.h"
#include "exec/dfs_executor.h"
#include "graph/graph_builder.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"

namespace {

struct RunResult {
  unsigned long long matches;
  double mean_ms;
  long long peak_queue;
  double join_idle_pct;
  unsigned long long punctuation_processed;
};

RunResult RunMonitor(bool on_demand, double heartbeat_hz) {
  using namespace dsms;

  GraphBuilder builder;
  Source* ingress = builder.AddSource("ingress", TimestampKind::kInternal);
  Source* egress = builder.AddSource("egress", TimestampKind::kInternal);
  // Match packets of the same flow seen within 5 s at both taps.
  WindowJoin* join = builder.AddWindowJoin(
      "correlate", /*left_window=*/5 * kSecond, /*right_window=*/5 * kSecond,
      WindowJoin::EquiJoin(/*left_field=*/0, /*right_field=*/0));
  Sink* alerts = builder.AddSink("pairs");
  builder.Connect(ingress, join);
  builder.Connect(egress, join);
  builder.Connect(join, alerts);
  Result<std::unique_ptr<QueryGraph>> graph = builder.Build();
  DSMS_CHECK_OK(graph.status());

  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = on_demand ? EtsMode::kOnDemand : EtsMode::kNone;
  DfsExecutor executor(graph->get(), &clock, config);
  Simulation sim(graph->get(), &executor, &clock);

  // Payload: [flow_id:int64, bytes:int64]. 64 active flows.
  auto packet_payload = [](uint64_t seed) {
    auto rng = std::make_shared<Pcg32>(seed);
    return [rng](uint64_t, Timestamp) {
      return std::vector<Value>{Value(rng->NextInt(0, 63)),
                                Value(rng->NextInt(64, 1500))};
    };
  };
  sim.AddFeed(ingress, std::make_unique<PoissonProcess>(30.0, 31),
              packet_payload(1));
  // Egress: bursty and mostly quiet (maintenance window at night).
  sim.AddFeed(egress,
              std::make_unique<BurstyProcess>(
                  /*burst_rate=*/20.0, /*idle_rate=*/0.02,
                  /*mean_burst_length=*/2 * kSecond,
                  /*mean_idle_length=*/40 * kSecond, /*seed=*/32),
              packet_payload(2));
  if (!on_demand && heartbeat_hz > 0) {
    sim.AddHeartbeat(egress, SecondsToDuration(1.0 / heartbeat_hz));
    sim.AddHeartbeat(ingress, SecondsToDuration(1.0 / heartbeat_hz));
  }
  sim.Run(300 * kSecond, /*warmup=*/20 * kSecond);

  const IdleWaitTracker* tracker = executor.idle_tracker(join->id());
  return RunResult{
      static_cast<unsigned long long>(alerts->data_delivered()),
      alerts->latency().mean_ms(),
      static_cast<long long>(sim.queue_tracker().peak_total()),
      tracker == nullptr ? 0.0
                         : tracker->IdleFraction(0, clock.now()) * 100.0,
      static_cast<unsigned long long>(join->stats().punctuation_in)};
}

void Report(const char* label, const RunResult& r) {
  std::printf(
      "%-22s matches=%-6llu mean_latency=%9.3f ms  peak_queue=%-5lld "
      "join_idle=%6.2f%%  punct_seen=%llu\n",
      label, r.matches, r.mean_ms, r.peak_queue, r.join_idle_pct,
      r.punctuation_processed);
}

}  // namespace

int main() {
  std::printf("Two-tap flow correlation (window join, 5 s windows)\n");
  std::printf("ingress: 30 pkt/s steady; egress: bursts of 20 pkt/s, "
              "mostly idle\n\n");
  Report("no punctuation:", RunMonitor(false, 0.0));
  Report("heartbeats @ 1 Hz:", RunMonitor(false, 1.0));
  Report("heartbeats @ 100 Hz:", RunMonitor(false, 100.0));
  Report("on-demand ETS:", RunMonitor(true, 0.0));
  std::printf("\nOn-demand ETS matches the dense-heartbeat latency without "
              "its constant punctuation load.\n");
  return 0;
}
