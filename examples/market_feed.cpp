// Market-feed consolidation: union two exchange feeds into one national
// tape. The feeds carry *external* (application) timestamps with a bounded
// skew δ — exactly the setting of Section 5's t + τ − δ ETS rule. A regional
// exchange trades rarely; without ETS, every trade from the busy exchange
// waits for the quiet one before it can appear on the consolidated tape in
// timestamp order.
//
// The query is written in the textual plan DSL (the stand-in for Stream
// Mill's ESL), and the example compares no-ETS vs on-demand ETS.
//
//   $ ./market_feed

#include <cstdio>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/random.h"
#include "exec/dfs_executor.h"
#include "graph/plan_parser.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"

namespace {

constexpr char kPlan[] = R"(
# Consolidated tape: two externally timestamped exchange feeds.
stream NYSE ts=external skew=50ms
stream REGIONAL ts=external skew=50ms
filter BIG_NYSE in=NYSE field=1 op=ge value=100       # size >= 100 shares
filter BIG_REG  in=REGIONAL field=1 op=ge value=100
union TAPE in=BIG_NYSE,BIG_REG
sink CONSOLIDATED in=TAPE
)";

struct RunResult {
  double mean_ms;
  double p99_ms;
  unsigned long long trades;
};

RunResult RunTape(dsms::EtsMode ets_mode) {
  using namespace dsms;
  Result<ParsedPlan> plan = ParsePlan(kPlan);
  DSMS_CHECK_OK(plan.status());

  auto* nyse = dynamic_cast<Source*>(plan->Find("NYSE"));
  auto* regional = dynamic_cast<Source*>(plan->Find("REGIONAL"));
  auto* tape = dynamic_cast<Sink*>(plan->Find("CONSOLIDATED"));
  DSMS_CHECK(nyse != nullptr && regional != nullptr && tape != nullptr);

  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = ets_mode;
  DfsExecutor executor(plan->graph.get(), &clock, config);
  Simulation sim(plan->graph.get(), &executor, &clock);

  // Payload: [price_cents:int64, size:int64]. Seeded => reproducible.
  auto trade_payload = [](uint64_t base_seed) {
    auto rng = std::make_shared<Pcg32>(base_seed);
    return [rng](uint64_t seq, Timestamp) {
      (void)seq;
      return std::vector<Value>{
          Value(static_cast<int64_t>(10000 + rng->NextInt(-500, 500))),
          Value(rng->NextInt(1, 1000))};
    };
  };
  sim.AddFeed(nyse, std::make_unique<PoissonProcess>(80.0, 11),
              trade_payload(100), /*jitter_seed=*/21);
  sim.AddFeed(regional, std::make_unique<PoissonProcess>(0.1, 12),
              trade_payload(200), /*jitter_seed=*/22);

  // Market-open messages. The paper's external ETS rule t + τ − δ needs a
  // first tuple to extrapolate from; until one arrives, no bound exists and
  // the tape would block on the quiet exchange (a cold-start effect real
  // feeds avoid with session-open messages — the same reason modern
  // watermark systems emit an initial watermark on connect).
  nyse->IngestExternal(0, {Value(int64_t{10000}), Value(int64_t{100})}, 0);
  regional->IngestExternal(0, {Value(int64_t{10000}), Value(int64_t{100})},
                           0);

  sim.Run(120 * kSecond, /*warmup=*/10 * kSecond);

  return RunResult{tape->latency().mean_ms(),
                   tape->latency().p99_us() / 1000.0,
                   static_cast<unsigned long long>(tape->data_delivered())};
}

}  // namespace

int main() {
  std::printf("Consolidated-tape example (external timestamps, skew 50 ms)\n");
  std::printf("NYSE: 80 trades/s; regional exchange: 0.1 trades/s\n\n");

  RunResult no_ets = RunTape(dsms::EtsMode::kNone);
  std::printf("without ETS:    %llu trades on tape, mean delay %10.3f ms, "
              "p99 %10.3f ms\n",
              no_ets.trades, no_ets.mean_ms, no_ets.p99_ms);

  RunResult on_demand = RunTape(dsms::EtsMode::kOnDemand);
  std::printf("on-demand ETS:  %llu trades on tape, mean delay %10.3f ms, "
              "p99 %10.3f ms\n",
              on_demand.trades, on_demand.mean_ms, on_demand.p99_ms);

  std::printf("\nspeedup: %.0fx — the tape no longer waits for the quiet "
              "exchange (delay is bounded by the 50 ms skew)\n",
              no_ets.mean_ms / on_demand.mean_ms);
  return 0;
}
