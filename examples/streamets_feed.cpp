// streamets_feed — deterministic network load generator: expand an
// experiment file's feed/heartbeat statements into the exact frame sequence
// a Simulation would deliver (src/net/feed_schedule.h) and replay it into a
// running streamets_serve over TCP.
//
//   $ ./streamets_feed --connect 127.0.0.1:7687 --duration 5s query.plan
//   $ ./streamets_feed --connect 127.0.0.1:7687 --pace 1.0
//         --extra-skew 50ms query.plan        # misbehaving producer
//
// All randomness is seeded inside the experiment file, so the same file and
// flags always produce the identical byte stream.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/flag_help.h"
#include "common/strings.h"
#include "net/feed_client.h"
#include "net/feed_schedule.h"
#include "net/net_fault.h"
#include "sim/experiment_spec.h"

namespace {

const std::vector<dsms::FlagHelp> kFlags = {
    {"--connect", "HOST:PORT", "server address (required)"},
    {"--duration", "DUR",
     "schedule horizon, e.g. 5s (overrides the file's run horizon)"},
    {"--rate-scale", "X", "multiply every feed's rate by X"},
    {"--connections", "N",
     "spread frames round-robin over N connections (default 1; >1 gives "
     "up exact replay ordering)"},
    {"--pace", "X",
     "wall seconds per virtual second of schedule (default 0 = blast)"},
    {"--extra-skew", "DUR",
     "subtract DUR from every external timestamp to breach the skew "
     "contract on purpose"},
    {"--disconnect-after", "N", "drop the connection after N frames"},
    {"--strip-hints", "",
     "omit arrival hints (8 bytes/frame; wall-clock servers ignore them)"},
    {"--resume", "",
     "HELLO/RESUME handshake: skip frames the server already holds "
     "durably (requires a recovery-enabled server; forces 1 connection)"},
    {"--retry", "N",
     "extra connect attempts with jittered exponential backoff (default 0)"},
    {"--backoff", "DUR", "first retry delay before jitter (default 100ms)"},
    {"--backoff-max", "DUR", "cap on any retry delay (default 5s)"},
    {"--backoff-seed", "N",
     "jitter RNG seed; fixed seed = reproducible retry timing (default 1)"},
    {"--connect-timeout", "DUR",
     "wall-clock cap on one connect attempt (default: OS)"},
    {"--write-timeout", "DUR",
     "wall-clock cap on one blocking send/recv (default: none)"},
    {"--fallback", "HOST:PORT",
     "extra server address tried round-robin on connect failure "
     "(repeatable)"},
    {"--chaos", "",
     "replay through the wire-fault injector armed by the file's netfault "
     "statement (kinds that kill the connection also require --resume)"},
    {"--chaos-seed", "N",
     "extra run seed XORed into the netfault seed (default 0)"},
    {"--help", "", "show this message and exit"},
};

bool SplitHostPort(const std::string& addr, std::string* host,
                   uint16_t* port) {
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  *host = addr.substr(0, colon);
  char* end = nullptr;
  long p = std::strtol(addr.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p <= 0 || p > 65535) return false;
  *port = static_cast<uint16_t>(p);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsms;

  std::string input;
  std::string connect;
  Duration duration = 0;
  double rate_scale = 1.0;
  bool chaos = false;
  uint64_t chaos_seed = 0;
  FeedClientOptions options;

  auto value_of = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0) {
      connect = value_of(&i);
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      if (!ParseDuration(value_of(&i), &duration).ok() || duration <= 0) {
        std::fprintf(stderr, "bad --duration value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--rate-scale") == 0) {
      rate_scale = std::strtod(value_of(&i), nullptr);
      if (rate_scale <= 0.0) {
        std::fprintf(stderr, "bad --rate-scale value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      options.connections =
          static_cast<int>(std::strtol(value_of(&i), nullptr, 10));
      if (options.connections < 1) {
        std::fprintf(stderr, "bad --connections value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--pace") == 0) {
      options.pace = std::strtod(value_of(&i), nullptr);
      if (options.pace < 0.0) {
        std::fprintf(stderr, "bad --pace value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--extra-skew") == 0) {
      if (!ParseDuration(value_of(&i), &options.extra_skew).ok() ||
          options.extra_skew < 0) {
        std::fprintf(stderr, "bad --extra-skew value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--disconnect-after") == 0) {
      options.disconnect_after = static_cast<uint64_t>(
          std::strtoull(value_of(&i), nullptr, 10));
    } else if (std::strcmp(argv[i], "--strip-hints") == 0) {
      options.strip_hints = true;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      options.resume = true;
    } else if (std::strcmp(argv[i], "--retry") == 0) {
      options.max_retries =
          static_cast<int>(std::strtol(value_of(&i), nullptr, 10));
      if (options.max_retries < 0) {
        std::fprintf(stderr, "bad --retry value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--backoff") == 0) {
      if (!ParseDuration(value_of(&i), &options.backoff_base).ok() ||
          options.backoff_base <= 0) {
        std::fprintf(stderr, "bad --backoff value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--backoff-max") == 0) {
      if (!ParseDuration(value_of(&i), &options.backoff_max).ok() ||
          options.backoff_max <= 0) {
        std::fprintf(stderr, "bad --backoff-max value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--backoff-seed") == 0) {
      options.backoff_seed = static_cast<uint64_t>(
          std::strtoull(value_of(&i), nullptr, 10));
    } else if (std::strcmp(argv[i], "--connect-timeout") == 0) {
      if (!ParseDuration(value_of(&i), &options.connect_timeout).ok() ||
          options.connect_timeout <= 0) {
        std::fprintf(stderr, "bad --connect-timeout value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--write-timeout") == 0) {
      if (!ParseDuration(value_of(&i), &options.write_timeout).ok() ||
          options.write_timeout <= 0) {
        std::fprintf(stderr, "bad --write-timeout value\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--fallback") == 0) {
      options.fallback_addresses.emplace_back(value_of(&i));
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--chaos-seed") == 0) {
      chaos_seed = static_cast<uint64_t>(
          std::strtoull(value_of(&i), nullptr, 10));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintFlagHelp(stdout, argv[0],
                    "replay an experiment file's feeds into a "
                    "streamets_serve instance over TCP",
                    kFlags);
      return 0;
    } else if (argv[i][0] != '-' && input.empty()) {
      input = argv[i];
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (input.empty() || connect.empty()) {
    std::fprintf(stderr,
                 "usage: %s --connect HOST:PORT [flags] <experiment-file>; "
                 "try --help\n",
                 argv[0]);
    return 2;
  }
  if (!SplitHostPort(connect, &options.host, &options.port)) {
    std::fprintf(stderr, "bad --connect address '%s'\n", connect.c_str());
    return 2;
  }

  std::ifstream file(input);
  if (!file.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", input.c_str());
    return 1;
  }
  std::ostringstream contents;
  contents << file.rdbuf();

  Result<Experiment> experiment = ParseExperiment(contents.str());
  if (!experiment.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  if (rate_scale != 1.0) {
    for (FeedSpec& feed : experiment->feeds) {
      feed.rate *= rate_scale;
      feed.burst_rate *= rate_scale;
      feed.idle_rate *= rate_scale;
    }
  }
  Timestamp horizon = duration > 0 ? duration : experiment->run.horizon;

  Result<std::vector<ScheduledFrame>> schedule =
      BuildFeedSchedule(*experiment, horizon);
  if (!schedule.ok()) {
    std::fprintf(stderr, "schedule error: %s\n",
                 schedule.status().ToString().c_str());
    return 1;
  }
  std::printf("schedule: %zu frames over %.3f s (virtual)\n",
              schedule->size(), DurationToSeconds(horizon));

  if (options.resume && options.connections != 1) {
    std::fprintf(stderr, "--resume requires --connections 1\n");
    return 2;
  }

  if (chaos) {
    if (experiment->netfaults.empty()) {
      std::fprintf(stderr,
                   "--chaos needs a netfault statement in %s (e.g. "
                   "'netfault kind=split seed=7')\n",
                   input.c_str());
      return 2;
    }
    if (experiment->netfaults.size() > 1) {
      std::fprintf(stderr,
                   "--chaos supports exactly one netfault statement "
                   "(%zu found)\n",
                   experiment->netfaults.size());
      return 2;
    }
    ChaosFeeder feeder(options, experiment->netfaults[0], chaos_seed);
    Result<ChaosFeedReport> report = feeder.Run(*schedule);
    if (!report.ok()) {
      std::fprintf(stderr, "chaos run error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("chaos timeline:\n%s", report->timeline.c_str());
    std::printf(
        "chaos: sent %llu frames, %d reconnects, %d stale rejects, "
        "%d rst aborts, %d garbage injections, %d duplicate hellos, "
        "%d half-open peers, %d split frames, %d coalesced writes, "
        "%d slow-dripped frames\n",
        static_cast<unsigned long long>(report->frames_sent),
        report->reconnects, report->stale_rejects, report->rst_aborts,
        report->garbage_injections, report->duplicate_hellos,
        report->half_open_peers, report->split_frames,
        report->coalesced_writes, report->slow_dripped_frames);
    return 0;
  }

  FeedClient client(options);
  Status status = client.Connect();
  if (!status.ok()) {
    std::fprintf(stderr, "connect error: %s\n", status.ToString().c_str());
    return 1;
  }
  if (options.resume) {
    status = client.Handshake();
    if (!status.ok()) {
      std::fprintf(stderr, "handshake error: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    uint64_t acked = 0;
    for (const auto& entry : client.acked()) acked += entry.second;
    std::printf("resume: server holds %llu frames durably; skipping them\n",
                static_cast<unsigned long long>(acked));
  }
  Result<uint64_t> sent = client.Send(*schedule);
  if (!sent.ok()) {
    std::fprintf(stderr, "send error: %s\n",
                 sent.status().ToString().c_str());
    return 1;
  }
  std::printf("sent %llu frames (%llu bytes) to %s\n",
              static_cast<unsigned long long>(*sent),
              static_cast<unsigned long long>(client.bytes_sent()),
              connect.c_str());
  return 0;
}
