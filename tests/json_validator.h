#ifndef DSMS_TESTS_JSON_VALIDATOR_H_
#define DSMS_TESTS_JSON_VALIDATOR_H_

// A small validating RFC 8259 JSON parser for tests: every JSON artifact
// the library can emit (TablePrinter::PrintJson, MetricsRegistry::PrintJson,
// Tracer::WriteChromeTrace) is round-tripped through ValidateJson so an
// escaping or number-formatting bug fails a test here before an external
// consumer (python -m json.tool, Perfetto) chokes on it. Recursive descent,
// no values materialized; on failure `error` describes the first offence
// and its byte offset.

#include <cstddef>
#include <string>
#include <string_view>

#include "common/strings.h"

namespace dsms::testing {

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Validate(std::string* error) {
    pos_ = 0;
    error_.clear();
    bool ok = ParseValue(/*depth=*/0);
    if (ok) {
      SkipWhitespace();
      if (pos_ != text_.size()) ok = Fail("trailing characters");
    }
    if (!ok && error != nullptr) {
      *error = StrFormat("at byte %zu: %s", pos_, error_.c_str());
    }
    return ok;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ >= text_.size() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Fail("bad literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseString();
      case 't':
        return ConsumeLiteral("true");
      case 'f':
        return ConsumeLiteral("false");
      case 'n':
        return ConsumeLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject(int depth) {
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString()) return false;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      if (!ParseValue(depth + 1)) return false;
      SkipWhitespace();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(int depth) {
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      if (!ParseValue(depth + 1)) return false;
      SkipWhitespace();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  bool ParseString() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char ch = static_cast<unsigned char>(text_[pos_]);
      if (ch == '"') {
        ++pos_;
        return true;
      }
      if (ch < 0x20) return Fail("unescaped control character in string");
      if (ch == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape");
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() || !IsHexDigit(text_[pos_ + i])) {
              return Fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Fail("bad escape character");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && IsNumberChar(text_[pos_])) ++pos_;
    if (!IsStrictJsonNumber(text_.substr(start, pos_ - start))) {
      pos_ = start;
      return Fail("invalid number");
    }
    return true;
  }

  static bool IsHexDigit(char ch) {
    return (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f') ||
           (ch >= 'A' && ch <= 'F');
  }

  static bool IsNumberChar(char ch) {
    return (ch >= '0' && ch <= '9') || ch == '.' || ch == '+' || ch == '-' ||
           ch == 'e' || ch == 'E';
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

/// True iff `text` is one valid RFC 8259 JSON document.
inline bool ValidateJson(std::string_view text, std::string* error = nullptr) {
  return JsonValidator(text).Validate(error);
}

}  // namespace dsms::testing

#endif  // DSMS_TESTS_JSON_VALIDATOR_H_
