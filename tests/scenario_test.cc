#include <tuple>

#include <gtest/gtest.h>

#include "common/time.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

ScenarioConfig ShortConfig(ScenarioKind kind) {
  ScenarioConfig config;
  config.kind = kind;
  config.horizon = 120 * kSecond;
  config.warmup = 10 * kSecond;
  if (kind == ScenarioKind::kPeriodicEts) config.heartbeat_rate = 10.0;
  return config;
}

TEST(ScenarioTest, LatencyOrderingMatchesPaper) {
  // Figure 7: A >> B > C ~ D (log scale).
  ScenarioResult a = RunScenario(ShortConfig(ScenarioKind::kNoEts));
  ScenarioResult b = RunScenario(ShortConfig(ScenarioKind::kPeriodicEts));
  ScenarioResult c = RunScenario(ShortConfig(ScenarioKind::kOnDemandEts));
  ScenarioResult d = RunScenario(ShortConfig(ScenarioKind::kLatent));

  EXPECT_GT(a.mean_latency_ms, 1000.0);            // seconds
  EXPECT_GT(a.mean_latency_ms, 10 * b.mean_latency_ms);
  EXPECT_GT(b.mean_latency_ms, 10 * c.mean_latency_ms);
  EXPECT_GE(c.mean_latency_ms, d.mean_latency_ms);
  EXPECT_LT(c.mean_latency_ms, 1.0);               // sub-millisecond
  // Figure 7(b): C − D is a fraction of a millisecond.
  EXPECT_LT(c.mean_latency_ms - d.mean_latency_ms, 0.5);
}

TEST(ScenarioTest, MemoryOrderingMatchesPaper) {
  // Figure 8: A in the thousands; C orders of magnitude lower.
  ScenarioResult a = RunScenario(ShortConfig(ScenarioKind::kNoEts));
  ScenarioResult c = RunScenario(ShortConfig(ScenarioKind::kOnDemandEts));
  EXPECT_GT(a.peak_queue_total, 500);
  EXPECT_LT(c.peak_queue_total, 20);
  EXPECT_GT(a.peak_queue_total, 50 * c.peak_queue_total);
}

TEST(ScenarioTest, IdleWaitingMatchesPaperText) {
  // Section 6: A ~99% idle, C < ~1%.
  ScenarioResult a = RunScenario(ShortConfig(ScenarioKind::kNoEts));
  ScenarioResult c = RunScenario(ShortConfig(ScenarioKind::kOnDemandEts));
  ScenarioResult d = RunScenario(ShortConfig(ScenarioKind::kLatent));
  EXPECT_GT(a.idle_fraction, 0.9);
  EXPECT_LT(c.idle_fraction, 0.01);
  EXPECT_DOUBLE_EQ(d.idle_fraction, 0.0);
}

TEST(ScenarioTest, EtsCountsConsistent) {
  ScenarioResult c = RunScenario(ShortConfig(ScenarioKind::kOnDemandEts));
  EXPECT_GT(c.ets_generated, 100u);
  EXPECT_GE(c.punctuation_steps, c.ets_generated);  // each ETS is processed
  ScenarioResult a = RunScenario(ShortConfig(ScenarioKind::kNoEts));
  EXPECT_EQ(a.ets_generated, 0u);
  EXPECT_EQ(a.punctuation_steps, 0u);
}

TEST(ScenarioTest, DeterministicPerSeed) {
  ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
  ScenarioResult r1 = RunScenario(config);
  ScenarioResult r2 = RunScenario(config);
  EXPECT_DOUBLE_EQ(r1.mean_latency_ms, r2.mean_latency_ms);
  EXPECT_EQ(r1.tuples_delivered, r2.tuples_delivered);
  EXPECT_EQ(r1.ets_generated, r2.ets_generated);
  config.seed = 43;
  ScenarioResult r3 = RunScenario(config);
  EXPECT_NE(r1.tuples_delivered, r3.tuples_delivered);
}

TEST(ScenarioTest, HigherHeartbeatRateLowersLatency) {
  ScenarioConfig slow_hb = ShortConfig(ScenarioKind::kPeriodicEts);
  slow_hb.heartbeat_rate = 0.5;
  ScenarioConfig fast_hb = ShortConfig(ScenarioKind::kPeriodicEts);
  fast_hb.heartbeat_rate = 50.0;
  ScenarioResult slow = RunScenario(slow_hb);
  ScenarioResult fast = RunScenario(fast_hb);
  EXPECT_GT(slow.mean_latency_ms, fast.mean_latency_ms * 5);
}

TEST(ScenarioTest, JoinShapeRunsAndBenefitsFromEts) {
  ScenarioConfig no_ets = ShortConfig(ScenarioKind::kNoEts);
  no_ets.shape = QueryShape::kJoin;
  ScenarioConfig on_demand = ShortConfig(ScenarioKind::kOnDemandEts);
  on_demand.shape = QueryShape::kJoin;
  ScenarioResult a = RunScenario(no_ets);
  ScenarioResult c = RunScenario(on_demand);
  EXPECT_GT(a.idle_fraction, 0.5);
  EXPECT_LT(c.idle_fraction, 0.05);
  EXPECT_GT(a.peak_queue_total, 10 * c.peak_queue_total);
}

TEST(ScenarioTest, AggregateShapeEmissionDelayDropsWithEts) {
  ScenarioConfig no_ets = ShortConfig(ScenarioKind::kNoEts);
  no_ets.shape = QueryShape::kAggregate;
  no_ets.slow_rate = 0.05;
  ScenarioConfig on_demand = ShortConfig(ScenarioKind::kOnDemandEts);
  on_demand.shape = QueryShape::kAggregate;
  on_demand.slow_rate = 0.05;
  ScenarioResult a = RunScenario(no_ets);
  ScenarioResult c = RunScenario(on_demand);
  // Without punctuation a window's result waits for the next (rare) tuple;
  // on-demand ETS closes windows promptly.
  EXPECT_GT(a.mean_latency_ms, 100.0);
  EXPECT_LT(c.mean_latency_ms, a.mean_latency_ms / 10);
  EXPECT_GE(c.tuples_delivered, a.tuples_delivered);
}

TEST(ScenarioTest, ExternalTimestampsWork) {
  ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
  config.ts_kind = TimestampKind::kExternal;
  config.skew_bound = 50 * kMillisecond;
  ScenarioResult c = RunScenario(config);
  EXPECT_GT(c.tuples_delivered, 1000u);
  EXPECT_GT(c.ets_generated, 0u);
  // Latency bounded by roughly the skew bound plus processing.
  EXPECT_LT(c.mean_latency_ms, 200.0);
}

TEST(ScenarioTest, RoundRobinExecutorRuns) {
  ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
  config.executor = ExecutorKind::kRoundRobin;
  ScenarioResult rr = RunScenario(config);
  EXPECT_GT(rr.tuples_delivered, 1000u);
  EXPECT_LT(rr.mean_latency_ms, 10.0);
}

TEST(ScenarioTest, NaryUnionFanIn) {
  ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
  config.num_slow_streams = 4;
  ScenarioResult c = RunScenario(config);
  EXPECT_GT(c.tuples_delivered, 1000u);
  EXPECT_LT(c.mean_latency_ms, 5.0);
}

TEST(ScenarioTest, BurstyArrivalsStillFast) {
  ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
  config.arrivals = ArrivalKind::kBursty;
  ScenarioResult c = RunScenario(config);
  EXPECT_GT(c.tuples_delivered, 100u);
  EXPECT_LT(c.mean_latency_ms, 10.0);
}

TEST(ScenarioTest, ToStringMentionsKeyFields) {
  ScenarioResult r = RunScenario(ShortConfig(ScenarioKind::kLatent));
  std::string s = r.ToString();
  EXPECT_NE(s.find("latency"), std::string::npos);
  EXPECT_NE(s.find("peak_queue"), std::string::npos);
}

class ScenarioInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ScenarioInvariantTest, NoOrderViolationsAnywhere) {
  auto [kind_index, shape_index] = GetParam();
  ScenarioConfig config;
  config.kind = static_cast<ScenarioKind>(kind_index);
  config.shape = static_cast<QueryShape>(shape_index);
  config.horizon = 60 * kSecond;
  config.warmup = 5 * kSecond;
  if (config.kind == ScenarioKind::kPeriodicEts) config.heartbeat_rate = 5.0;
  ScenarioResult r = RunScenario(config);
  EXPECT_EQ(r.order_violations, 0u)
      << ScenarioKindToString(config.kind) << " shape " << shape_index;
  EXPECT_EQ(r.buffer_order_violations, 0u)
      << ScenarioKindToString(config.kind) << " shape " << shape_index;
}

INSTANTIATE_TEST_SUITE_P(AllKindsAllShapes, ScenarioInvariantTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2)));

TEST(ScenarioKindTest, Names) {
  EXPECT_STREQ(ScenarioKindToString(ScenarioKind::kNoEts), "A:no-ets");
  EXPECT_STREQ(ScenarioKindToString(ScenarioKind::kLatent), "D:latent");
}

}  // namespace
}  // namespace dsms
