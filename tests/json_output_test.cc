// Strict JSON validity for every JSON emitter in the tree: TablePrinter
// rows, MetricsRegistry snapshots, Chrome trace exports, and the registry
// publishing paths of the stat structs. Each output is round-tripped
// through the validating parser in tests/json_validator.h. Also the
// regression suite for the TablePrinter::PrintJson escaping/number bugs.

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "json_validator.h"
#include "metrics/table_printer.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "sim/experiment_spec.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

using ::dsms::testing::ValidateJson;

std::string Render(const TablePrinter& table) {
  std::ostringstream os;
  table.PrintJson(os);
  return os.str();
}

std::string Render(const MetricsRegistry& registry) {
  std::ostringstream os;
  registry.PrintJson(os);
  return os.str();
}

TEST(JsonValidatorTest, AcceptsValidDocuments) {
  for (const char* doc :
       {"{}", "[]", "null", "true", "-1.5e-3", "\"a\\nb\\u00e9\"",
        "{\"k\": [1, 2, {\"n\": null}], \"m\": \"v\"}", "[0.5, 1e10, -0]"}) {
    std::string error;
    EXPECT_TRUE(ValidateJson(doc, &error)) << doc << ": " << error;
  }
}

TEST(JsonValidatorTest, RejectsInvalidDocuments) {
  for (const char* doc :
       {"", "{", "[1,]", "{\"k\": }", "01", "1.", ".5", "+1", "nan", "inf",
        "\"unterminated", "\"ctrl\nchar\"", "\"bad\\qescape\"", "{} {}",
        "[1] trailing"}) {
    EXPECT_FALSE(ValidateJson(doc)) << "accepted: " << doc;
  }
}

TEST(TablePrinterJsonTest, EscapesControlCharactersInCells) {
  TablePrinter table({"name\twith\ttabs", "value"});
  table.AddRow({"line1\nline2", "quote\" backslash\\ bell\x07"});
  std::string json = Render(table);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
  // Regression: control characters used to pass through raw.
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0007"), std::string::npos);
  EXPECT_EQ(json.find('\x07'), std::string::npos);
}

TEST(TablePrinterJsonTest, RejectsStrtodNumberisms) {
  // Regression: "1.", ".5" and "+1" are accepted by strtod but are not JSON
  // numbers; they must be emitted as strings, not bare tokens.
  TablePrinter table({"a", "b", "c", "d"});
  table.AddRow({"1.", ".5", "+1", "1e"});
  std::string json = Render(table);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"1.\""), std::string::npos);
  EXPECT_NE(json.find("\".5\""), std::string::npos);
  EXPECT_NE(json.find("\"+1\""), std::string::npos);
}

TEST(TablePrinterJsonTest, KeepsRealNumbersBare) {
  TablePrinter table({"a", "b", "c", "d"});
  table.AddRow({"0", "-12", "3.25", "1.5e-3"});
  std::string json = Render(table);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error;
  EXPECT_EQ(json.find("\"0\""), std::string::npos);
  EXPECT_NE(json.find(": -12"), std::string::npos);
  EXPECT_NE(json.find(": 1.5e-3"), std::string::npos);
}

TEST(TablePrinterJsonTest, NonFiniteCellsBecomeNull) {
  TablePrinter table({"nan", "inf", "ninf"});
  table.AddNumericRow({std::nan(""), INFINITY, -INFINITY});
  std::string json = Render(table);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(json.find("\"inf\": null"), std::string::npos);
  EXPECT_NE(json.find("\"ninf\": null"), std::string::npos);
}

TEST(MetricsRegistryJsonTest, SnapshotIsStrictJson) {
  MetricsRegistry registry;
  registry.SetCounter("exec.data_steps", 12345);
  registry.SetGauge("latency.mean_ms", 0.125);
  registry.SetGauge("weird\nname\"with\\stuff", 1.0);
  registry.GetHistogram("lat")->Record(10);
  registry.RegisterView("view.live", [] { return 2.5; });
  std::string json = Render(registry);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
}

TEST(MetricsRegistryJsonTest, NonFiniteValuesBecomeNull) {
  MetricsRegistry registry;
  registry.SetGauge("bad.nan", std::nan(""));
  registry.SetGauge("bad.inf", INFINITY);
  registry.RegisterView("bad.view", [] { return -INFINITY; });
  std::string json = Render(registry);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"bad.nan\": null"), std::string::npos);
  EXPECT_NE(json.find("\"bad.inf\": null"), std::string::npos);
  EXPECT_NE(json.find("\"bad.view\": null"), std::string::npos);
}

TEST(PublishToJsonTest, ScenarioResultSnapshotIsStrictJson) {
  ScenarioConfig config;
  config.horizon = 10 * kSecond;
  config.warmup = 0;
  ScenarioResult result = RunScenario(config);
  MetricsRegistry registry;
  result.PublishTo(&registry, "scenario");
  EXPECT_TRUE(registry.Contains("scenario.latency.mean_ms"));
  EXPECT_TRUE(registry.Contains("scenario.exec.data_steps"));
  std::string json = Render(registry);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
}

// A spilling join scenario must surface the storage tier's gauges under
// the same snapshot prefix, and the snapshot must stay strict JSON with
// them present.
TEST(PublishToJsonTest, StorageGaugesRideTheSnapshot) {
  ScenarioConfig config;
  config.shape = QueryShape::kJoin;
  config.horizon = 20 * kSecond;
  config.warmup = 0;
  config.join_window = 4 * kSecond;
  config.state_spill_dir =
      ::testing::TempDir() + "/dsms_json_storage_blocks";
  config.state_mem_budget = 2048;
  ScenarioResult result = RunScenario(config);
  EXPECT_GT(result.storage.spills, 0u);
  MetricsRegistry registry;
  result.PublishTo(&registry, "scenario");
  EXPECT_TRUE(registry.Contains("scenario.storage.hot_bytes"));
  EXPECT_TRUE(registry.Contains("scenario.storage.spills"));
  EXPECT_TRUE(registry.Contains("scenario.storage.loads"));
  EXPECT_TRUE(registry.Contains("scenario.storage.purged_blocks"));
  EXPECT_TRUE(registry.Contains("scenario.storage.index_probes"));
  std::string json = Render(registry);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
}

TEST(PublishToJsonTest, ExperimentReportSnapshotIsStrictJson) {
  ExperimentReport report;
  report.end_time = 120 * kSecond;
  report.sinks.push_back({"OUT", 42, 1.5, 9.0});
  report.exec.data_steps = 7;
  MetricsRegistry registry;
  report.PublishTo(&registry);
  EXPECT_TRUE(registry.Contains("sink.OUT.tuples"));
  EXPECT_TRUE(registry.Contains("exec.data_steps"));
  std::string json = Render(registry);
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
}

TEST(ChromeTraceJsonTest, EveryEventKindValidates) {
  VirtualClock clock;
  Tracer tracer(&clock, 64);
  tracer.SetOperatorName(0, "union \"U\"\nline");  // hostile display name
  tracer.SetArcName(0, "F1 -> U");
  tracer.RecordStep(0, 0, 5, StepKind::kData);
  tracer.RecordNosRule(0, NosRule::kBacktrack, 3);
  tracer.RecordEts(1, EtsOrigin::kOnDemand, 100);
  tracer.RecordEts(1, EtsOrigin::kWatchdog, 200);
  tracer.RecordIdleWait(0, true);
  tracer.RecordIdleWait(0, false);
  tracer.RecordHighWater(0, 16);
  tracer.RecordFault(1, 1, 4);
  tracer.RecordPunctuation(0, true, 50);
  tracer.RecordPunctuation(0, false, 60);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  std::string error;
  EXPECT_TRUE(ValidateJson(os.str(), &error)) << error << "\n" << os.str();
}

TEST(ChromeTraceJsonTest, EmptyTraceValidates) {
  VirtualClock clock;
  Tracer tracer(&clock, 8);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  std::string error;
  EXPECT_TRUE(ValidateJson(os.str(), &error)) << error << "\n" << os.str();
}

TEST(ChromeTraceJsonTest, ScenarioTraceFileValidates) {
  const std::string path = ::testing::TempDir() + "/scenario_trace.json";
  ScenarioConfig config;
  config.horizon = 10 * kSecond;
  config.warmup = 0;
  config.trace_path = path;
  RunScenario(config);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::ostringstream contents;
  contents << in.rdbuf();
  std::string error;
  EXPECT_TRUE(ValidateJson(contents.str(), &error)) << error;
  EXPECT_NE(contents.str().find("traceEvents"), std::string::npos);
}

}  // namespace
}  // namespace dsms
