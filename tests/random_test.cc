#include "common/random.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/time.h"
#include "test_seed.h"

namespace dsms {
namespace {

TEST(Pcg32Test, DeterministicForSameSeed) {
  Pcg32 a(123, 7);
  Pcg32 b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint32(), b.NextUint32());
}

TEST(Pcg32Test, DifferentSeedsDiverge) {
  Pcg32 a(1);
  Pcg32 b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint32() != b.NextUint32()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(Pcg32Test, DifferentStreamsDiverge) {
  Pcg32 a(1, 1);
  Pcg32 b(1, 2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint32() != b.NextUint32()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(Pcg32Test, NextBelowInRange) {
  Pcg32 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(Pcg32Test, NextDoubleInUnitInterval) {
  const uint64_t seed = test::TestSeedOr(11);
  DSMS_TRACE_SEED(seed);
  Pcg32 rng(seed);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32Test, NextDoubleRanged) {
  Pcg32 rng(12);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Pcg32Test, BernoulliFrequency) {
  const uint64_t seed = test::TestSeedOr(13);
  DSMS_TRACE_SEED(seed);
  Pcg32 rng(seed);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBernoulli(0.95)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.95, 0.01);
}

TEST(Pcg32Test, BernoulliEdges) {
  Pcg32 rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(Pcg32Test, ExponentialGapMeanMatchesRate) {
  const uint64_t seed = test::TestSeedOr(15);
  DSMS_TRACE_SEED(seed);
  Pcg32 rng(seed);
  const double rate = 50.0;  // The paper's fast stream.
  double total_seconds = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    Duration gap = rng.NextExponentialGap(rate);
    EXPECT_GE(gap, 1);
    total_seconds += DurationToSeconds(gap);
  }
  EXPECT_NEAR(total_seconds / n, 1.0 / rate, 0.001);
}

TEST(Pcg32Test, ExponentialGapSlowRate) {
  const uint64_t seed = test::TestSeedOr(16);
  DSMS_TRACE_SEED(seed);
  Pcg32 rng(seed);
  const double rate = 0.05;  // The paper's slow stream: mean gap 20 s.
  double total_seconds = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    total_seconds += DurationToSeconds(rng.NextExponentialGap(rate));
  }
  EXPECT_NEAR(total_seconds / n, 20.0, 1.0);
}

TEST(Pcg32Test, NextIntBounds) {
  Pcg32 rng(17);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.NextInt(9, 9), 9);
}

TEST(Pcg32Test, NextIntCoversRange) {
  Pcg32 rng(18);
  bool seen[3] = {false, false, false};
  for (int i = 0; i < 200; ++i) seen[rng.NextInt(0, 2)] = true;
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
}

}  // namespace
}  // namespace dsms
