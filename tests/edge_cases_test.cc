// Edge-case coverage across modules: fan-out with one blocked branch,
// event-queue stress, huge-fan-in unions, heartbeat phase, and accessor
// preconditions.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/clock.h"
#include "common/random.h"
#include "core/tuple.h"
#include "exec/dfs_executor.h"
#include "graph/graph_builder.h"
#include "sim/arrival_process.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace dsms {
namespace {

TEST(EdgeCaseTest, CopyWithOneBlockedBranchStillFeedsTheOther) {
  // S -> copy -> [direct sink, union(other input silent) ...]. The direct
  // branch must keep flowing while the union branch idle-waits (scenario A
  // on one branch only).
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  Source* silent = builder.AddSource("SILENT", TimestampKind::kInternal);
  CopyOp* copy = builder.AddCopy("C");
  Sink* direct = builder.AddSink("DIRECT");
  Union* u = builder.AddUnion("U");
  Sink* merged = builder.AddSink("MERGED");
  builder.Connect(s, copy);
  builder.Connect(copy, direct);
  builder.Connect(copy, u);
  builder.Connect(silent, u);
  builder.Connect(u, merged);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());

  VirtualClock clock;
  DfsExecutor executor(graph->get(), &clock, ExecConfig{});  // no ETS
  Simulation sim(graph->get(), &executor, &clock);
  sim.AddFeed(s, std::make_unique<ConstantRateProcess>(20.0));
  sim.Run(10 * kSecond);

  EXPECT_NEAR(static_cast<double>(direct->data_delivered()), 200.0, 2.0);
  EXPECT_EQ(merged->data_delivered(), 0u);  // union blocked: correct
  EXPECT_TRUE(u->HasPendingData());
  EXPECT_EQ(sim.order_validator().violations(), 0u);
}

TEST(EdgeCaseTest, EventQueueStressKeepsGlobalOrder) {
  EventQueue queue;
  Pcg32 rng(9);
  std::vector<Timestamp> fired;
  for (int i = 0; i < 5000; ++i) {
    Timestamp t = rng.NextInt(0, 100000);
    queue.Schedule(t, [t, &fired](Timestamp) { fired.push_back(t); });
  }
  queue.FireDue(100000);
  ASSERT_EQ(fired.size(), 5000u);
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

TEST(EdgeCaseTest, WideUnionFanIn) {
  const int kStreams = 32;
  GraphBuilder builder;
  std::vector<Source*> sources;
  Union* u = builder.AddUnion("U");
  for (int i = 0; i < kStreams; ++i) {
    // std::string("S") + ... dodges a GCC 12 -Wrestrict false positive in
    // the operator+(const char*, string&&) insert path (PR 105329).
    Source* s = builder.AddSource(std::string("S") + std::to_string(i),
                                  TimestampKind::kInternal);
    builder.Connect(s, u);
    sources.push_back(s);
  }
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(u, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  sink->set_collect(true);

  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  DfsExecutor executor(graph->get(), &clock, config);
  Simulation sim(graph->get(), &executor, &clock);
  for (int i = 0; i < kStreams; ++i) {
    sim.AddFeed(sources[static_cast<size_t>(i)],
                std::make_unique<PoissonProcess>(
                    1.0, static_cast<uint64_t>(100 + i)));
  }
  sim.Run(30 * kSecond);

  uint64_t ingested = 0;
  for (Source* s : sources) ingested += s->tuples_ingested();
  // All but the final stragglers delivered, strictly in order.
  EXPECT_GE(sink->data_delivered() + kStreams, ingested);
  Timestamp previous = kMinTimestamp;
  for (const Tuple& t : sink->collected()) {
    EXPECT_GE(t.timestamp(), previous);
    previous = t.timestamp();
  }
  EXPECT_EQ(sim.order_validator().violations(), 0u);
}

TEST(EdgeCaseTest, HeartbeatPhaseOffsetsFirstTick) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());

  VirtualClock clock;
  DfsExecutor executor(graph->get(), &clock, ExecConfig{});
  Simulation sim(graph->get(), &executor, &clock);
  sim.AddHeartbeat(s, /*period=*/kSecond, /*phase=*/300 * kMillisecond);
  sim.Run(5 * kSecond);
  // Ticks at 1.3, 2.3, 3.3, 4.3 (phase + period onward).
  EXPECT_EQ(sink->punctuation_eliminated(), 4u);
}

TEST(EdgeCaseTest, OutputSchemaBeforeValidateDies) {
  QueryGraph graph;
  auto* s = graph.Add(
      std::make_unique<Source>("S", 0, TimestampKind::kInternal));
  EXPECT_DEATH(graph.output_schema(s->id()), "");
}

TEST(EdgeCaseTest, ZeroWindowJoinMatchesOnlySimultaneous) {
  WindowJoin join("j", /*left_window=*/0, /*right_window=*/0, nullptr);
  StreamBuffer left("l");
  StreamBuffer right("r");
  StreamBuffer out("out");
  join.AddInput(&left);
  join.AddInput(&right);
  join.AddOutput(&out);
  ManualExecContext ctx;
  left.Push(Tuple::MakeData(10, {Value(int64_t{1})}));
  right.Push(Tuple::MakeData(10, {Value(int64_t{2})}));
  left.Push(Tuple::MakeData(20, {Value(int64_t{3})}));
  right.Push(Tuple::MakeData(25, {Value(int64_t{4})}));
  left.Push(Tuple::MakePunctuation(100));
  right.Push(Tuple::MakePunctuation(100));
  for (int i = 0; i < 50; ++i) join.Step(ctx);
  int matches = 0;
  while (!out.empty()) {
    if (out.Pop().is_data()) ++matches;
  }
  EXPECT_EQ(matches, 1);  // only the ts-10 pair is simultaneous
}

TEST(EdgeCaseTest, SimulationWithNoFeedsJustAdvancesClock) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  VirtualClock clock;
  DfsExecutor executor(graph->get(), &clock, ExecConfig{});
  Simulation sim(graph->get(), &executor, &clock);
  sim.Run(kSecond);
  EXPECT_EQ(clock.now(), kSecond);
  EXPECT_EQ(sink->data_delivered(), 0u);
}

}  // namespace
}  // namespace dsms
