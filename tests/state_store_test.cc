// Unit tests for the spillable time-partitioned state store
// (src/storage/): block file format and CRC guarding, StateTable
// append/probe/expire semantics (insertion order, keyed probes via the
// per-block hash indexes), budget-driven eviction and load-back
// equivalence, O(1) whole-block purge of spilled state, checkpoint
// manifest round trips with block-referencing descriptors, orphan-file GC,
// per-checkpoint file pinning, and injected disk faults (stall charging,
// spill-failure shedding).

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/tuple.h"
#include "core/value.h"
#include "recovery/state_codec.h"
#include "sim/fault_injector.h"
#include "storage/block_file.h"
#include "storage/state_store.h"

namespace dsms {
namespace {

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

/// A per-test scratch directory, wiped before use so reruns start clean.
std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/dsms_storage_" + tag;
  for (const std::string& name : ListDir(dir)) {
    std::remove((dir + "/" + name).c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

Tuple Row(Timestamp ts, int64_t key, int64_t payload = 0) {
  return Tuple::MakeData(ts, {Value(key), Value(payload)});
}

std::vector<Tuple> ProbeAll(StateTable& table, Timestamp lo, Timestamp hi,
                            const Value* key = nullptr) {
  std::vector<Tuple> rows;
  table.Probe(lo, hi, key, [&](const Tuple& t) { rows.push_back(t); });
  return rows;
}

// --- block files ---

TEST(BlockFileTest, RoundTrip) {
  std::string dir = FreshDir("blockfile");
  ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
  BlockFileContents contents;
  contents.block_id = 7;
  contents.rows.push_back(Row(10, 1, 100));
  contents.rows.push_back(Row(11, 2, 200));
  ASSERT_TRUE(WriteBlockFile(dir, contents).ok());
  Result<BlockFileContents> loaded = ReadBlockFile(BlockFilePath(dir, 7));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->rows.size(), 2u);
  EXPECT_EQ(loaded->rows[0].ToString(), contents.rows[0].ToString());
  EXPECT_EQ(loaded->rows[1].ToString(), contents.rows[1].ToString());
}

TEST(BlockFileTest, CorruptionIsDetected) {
  std::string dir = FreshDir("blockcorrupt");
  ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
  BlockFileContents contents;
  contents.block_id = 1;
  contents.rows.push_back(Row(10, 1, 100));
  const std::string path = BlockFilePath(dir, 1);
  ASSERT_TRUE(WriteBlockFile(dir, contents).ok());
  // Flip one byte in the body; the CRC must catch it.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-1, std::ios::end);
  char last = 0;
  f.seekg(-1, std::ios::end);
  f.get(last);
  f.seekp(-1, std::ios::end);
  f.put(static_cast<char>(last ^ 0xff));
  f.close();
  EXPECT_FALSE(ReadBlockFile(path).ok());
}

TEST(BlockFileTest, ListSkipsForeignFiles) {
  std::string dir = FreshDir("blocklist");
  ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
  BlockFileContents contents;
  contents.block_id = 3;
  ASSERT_TRUE(WriteBlockFile(dir, contents).ok());
  contents.block_id = 1;
  ASSERT_TRUE(WriteBlockFile(dir, contents).ok());
  std::ofstream(dir + "/notes.txt") << "not a block";
  std::vector<std::pair<uint64_t, std::string>> files;
  ASSERT_TRUE(ListBlockFiles(dir, &files).ok());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].first, 1u);
  EXPECT_EQ(files[1].first, 3u);
}

// --- standalone StateTable (no store: hot-only) ---

TEST(StateTableTest, ProbeBandInInsertionOrder) {
  StateTable table;
  table.set_name("t");
  // Out-of-bucket-order appends still preserve per-probe insertion order.
  table.Append(Row(2500, 1));
  table.Append(Row(500, 2));
  table.Append(Row(1500, 3));
  EXPECT_EQ(table.size(), 3u);
  std::vector<Tuple> rows = ProbeAll(table, 0, 3000);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].value(0).int64_value(), 1);
  EXPECT_EQ(rows[1].value(0).int64_value(), 2);
  EXPECT_EQ(rows[2].value(0).int64_value(), 3);
  // Band [1000, 2000] hits only the middle bucket's row.
  rows = ProbeAll(table, 1000, 2000);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].value(0).int64_value(), 3);
}

TEST(StateTableTest, KeyedProbeUsesIndexAndReverifiesEquality) {
  StateTable table;
  table.set_key_field(0);
  for (int i = 0; i < 100; ++i) {
    table.Append(Row(/*ts=*/i * 10, /*key=*/i % 5, /*payload=*/i));
  }
  Value key(static_cast<int64_t>(3));
  std::vector<Tuple> rows = ProbeAll(table, 0, 1000, &key);
  ASSERT_EQ(rows.size(), 20u);
  for (const Tuple& t : rows) EXPECT_EQ(t.value(0).int64_value(), 3);
  // Insertion order within the key.
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].value(1).int64_value(),
              rows[i].value(1).int64_value());
  }
  EXPECT_GT(table.index_probes(), 0u);
  EXPECT_EQ(table.index_hits(), 20u);
}

TEST(StateTableTest, ExpireStopsAtFirstLiveRow) {
  StateTable table;
  // Same bucket, but the first row is the newest: prefix-stop expiry (the
  // deque semantics the operators rely on) must keep everything.
  table.Append(Row(900, 1));
  table.Append(Row(100, 2));
  table.Expire(/*cutoff=*/500);
  EXPECT_EQ(table.size(), 2u);
  // Now a cutoff above both expires both.
  table.Expire(1000);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(ProbeAll(table, 0, 10000).empty());
}

TEST(StateTableTest, ExpireDropsWholeBlocks) {
  StateTable table;
  for (int i = 0; i < 10; ++i) {
    table.Append(Row(i * kSecond + kSecond / 2, i));
  }
  EXPECT_EQ(table.num_blocks(), 10u);
  table.Expire(5 * kSecond);
  EXPECT_EQ(table.size(), 5u);
  EXPECT_LE(table.num_blocks(), 6u);
  std::vector<Tuple> rows = ProbeAll(table, 0, 100 * kSecond);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].value(0).int64_value(), 5);
}

// --- spilling under a store ---

struct SpillRig {
  explicit SpillRig(const std::string& tag, uint64_t budget = 256,
                    OverloadPolicy overload = OverloadPolicy::kBlockSource) {
    config.mem_budget = budget;
    config.spill_dir = FreshDir(tag);
    config.granularity = kSecond;
    config.overload = overload;
    store = std::make_unique<StateStore>(config);
    EXPECT_TRUE(store->Init().ok());
    table.set_name("t");
    table.set_key_field(0);
    table.Bind(store.get(), nullptr);
  }

  /// Fills `n` one-row buckets; with a 256-byte budget most seal + spill.
  void Fill(int n) {
    for (int i = 0; i < n; ++i) {
      table.Append(Row(i * kSecond + 1, i % 5, i));
      table.MaybeEvict();
    }
  }

  StorageConfig config;
  std::unique_ptr<StateStore> store;
  StateTable table;
};

TEST(StateStoreTest, SpillsColdBlocksUnderBudgetAndLoadsBack) {
  SpillRig rig("spill");
  rig.Fill(50);
  EXPECT_GT(rig.table.num_spilled_blocks(), 0u);
  EXPECT_LE(rig.table.hot_bytes(), rig.config.mem_budget);
  EXPECT_EQ(rig.table.size(), 50u);
  // Block files exist on disk.
  EXPECT_EQ(ListDir(rig.config.spill_dir).size(),
            rig.table.num_spilled_blocks());

  // A full probe loads everything back, contents and order intact.
  std::vector<Tuple> rows = ProbeAll(rig.table, 0, 100 * kSecond);
  ASSERT_EQ(rows.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rows[i].value(1).int64_value(), i);
  }
  StorageStats stats = rig.store->stats();
  EXPECT_GT(stats.spills, 0u);
  EXPECT_GT(stats.loads, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(StateStoreTest, EvictionPicksOldestSealedBlocksFirst) {
  SpillRig rig("evictorder");
  rig.Fill(20);
  // The oldest sealed blocks (farthest below the frontier) must be the
  // spilled ones; the newest stay resident.
  std::vector<Tuple> newest = ProbeAll(rig.table, 19 * kSecond, 20 * kSecond);
  ASSERT_EQ(newest.size(), 1u);
  StorageStats before = rig.store->stats();
  // Probing only the newest (resident) band must not trigger any load.
  StorageStats after = rig.store->stats();
  EXPECT_EQ(before.loads, after.loads);
}

TEST(StateStoreTest, KeyedProbeEquivalentToUnbudgetedTable) {
  SpillRig rig("equiv");
  StateTable reference;
  reference.set_key_field(0);
  for (int i = 0; i < 80; ++i) {
    Tuple t = Row(i * 200 * kMillisecond, i % 7, i);
    rig.table.Append(t);
    rig.table.MaybeEvict();
    reference.Append(std::move(t));
  }
  for (int k = 0; k < 7; ++k) {
    Value key(static_cast<int64_t>(k));
    std::vector<Tuple> got = ProbeAll(rig.table, kSecond, 12 * kSecond, &key);
    std::vector<Tuple> want =
        ProbeAll(reference, kSecond, 12 * kSecond, &key);
    ASSERT_EQ(got.size(), want.size()) << "key " << k;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].ToString(), want[i].ToString());
    }
  }
}

TEST(StateStoreTest, ExpirePurgesSpilledBlocksWithoutLoading) {
  SpillRig rig("purge");
  rig.Fill(30);
  ASSERT_GT(rig.table.num_spilled_blocks(), 0u);
  uint64_t loads_before = rig.store->stats().loads;
  rig.table.Expire(25 * kSecond);
  EXPECT_EQ(rig.table.size(), 5u);
  // Whole-block purge: no file was read to drop spilled blocks...
  EXPECT_EQ(rig.store->stats().loads, loads_before);
  EXPECT_GT(rig.store->stats().purged_blocks, 0u);
  // ...and their files are gone (only still-spilled blocks remain).
  EXPECT_EQ(ListDir(rig.config.spill_dir).size(),
            rig.table.num_spilled_blocks());
}

TEST(StateStoreTest, ClearReleasesEverything) {
  SpillRig rig("clear");
  rig.Fill(30);
  rig.table.Clear();
  EXPECT_EQ(rig.table.size(), 0u);
  EXPECT_EQ(rig.table.num_blocks(), 0u);
  EXPECT_TRUE(ListDir(rig.config.spill_dir).empty());
}

// --- checkpoint manifest, descriptors, GC ---

TEST(StateStoreTest, SaveLoadRoundTripsSpilledStateByReference) {
  SpillRig rig("ckpt");
  rig.Fill(40);
  ASSERT_GT(rig.table.num_spilled_blocks(), 0u);
  std::vector<Tuple> want = ProbeAll(rig.table, 0, 100 * kSecond);
  // Spill again: the equivalence probe above loaded blocks back.
  rig.table.MaybeEvict();

  StateWriter manifest_w;
  rig.store->SaveManifest(manifest_w);
  StateWriter table_w;
  rig.table.SaveState(table_w);
  // A spilled-state checkpoint is O(hot): far smaller than the full rows.
  StateWriter full_w;
  StateTable hot_copy;
  hot_copy.set_key_field(0);
  for (const Tuple& t : want) hot_copy.Append(t);
  hot_copy.SaveState(full_w);
  EXPECT_LT(table_w.data().size(), full_w.data().size());

  // Restore into a fresh store over the same spill dir (the recovery path:
  // manifest first, then table state, then orphan GC).
  StorageConfig config2 = rig.config;
  StateStore store2(config2);
  ASSERT_TRUE(store2.Init().ok());
  StateReader manifest_r(manifest_w.data());
  store2.RestoreManifest(manifest_r);
  StateTable restored;
  restored.set_key_field(0);
  restored.Bind(&store2, nullptr);
  StateReader table_r(table_w.data());
  restored.LoadState(table_r);
  store2.GcOrphanFiles();

  std::vector<Tuple> got = ProbeAll(restored, 0, 100 * kSecond);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].ToString(), want[i].ToString());
  }
}

TEST(StateStoreTest, GcRemovesOrphanFilesAndKeepsClaimed) {
  SpillRig rig("gc");
  rig.Fill(40);
  ASSERT_GT(rig.table.num_spilled_blocks(), 2u);
  StateWriter table_w;
  rig.table.SaveState(table_w);
  size_t files = ListDir(rig.config.spill_dir).size();

  // A second incarnation that restores nothing: every file is an orphan.
  {
    StateStore fresh(rig.config);
    ASSERT_TRUE(fresh.Init().ok());
    StateTable t2;
    t2.Bind(&fresh, nullptr);
    fresh.GcOrphanFiles();
    EXPECT_TRUE(ListDir(rig.config.spill_dir).empty());
  }

  // Re-create the files and restore properly: all claimed files survive.
  rig.table.Clear();
  SpillRig rig2("gc2");
  rig2.Fill(40);
  StateWriter w2;
  rig2.table.SaveState(w2);
  files = ListDir(rig2.config.spill_dir).size();
  StateStore store3(rig2.config);
  ASSERT_TRUE(store3.Init().ok());
  StateTable t3;
  t3.set_key_field(0);
  t3.Bind(&store3, nullptr);
  StateReader r2(w2.data());
  t3.LoadState(r2);
  store3.GcOrphanFiles();
  EXPECT_EQ(ListDir(rig2.config.spill_dir).size(), files);
}

TEST(StateStoreTest, CheckpointPinsFilesUntilPruned) {
  SpillRig rig("pins");
  rig.Fill(20);
  ASSERT_GT(rig.table.num_spilled_blocks(), 0u);
  // Checkpoint 1 references all currently spilled blocks.
  rig.store->OnCheckpoint(/*checkpoint_id=*/1, /*keep=*/2);
  size_t files_at_ckpt1 = ListDir(rig.config.spill_dir).size();

  // The blocks expire: their files must survive while checkpoint 1 is
  // retained (a restore from it would need them)...
  rig.table.Expire(100 * kSecond);
  EXPECT_EQ(rig.table.size(), 0u);
  EXPECT_EQ(ListDir(rig.config.spill_dir).size(), files_at_ckpt1);

  // ...and go away once keep-N pruning drops checkpoint 1.
  rig.store->OnCheckpoint(2, 2);
  rig.store->OnCheckpoint(3, 2);
  rig.store->OnCheckpoint(4, 2);
  EXPECT_TRUE(ListDir(rig.config.spill_dir).empty());
}

TEST(StateStoreTest, RestoredClaimsStayPinnedUntilNextCheckpoint) {
  SpillRig rig("restorepin");
  rig.Fill(20);
  ASSERT_GT(rig.table.num_spilled_blocks(), 0u);
  StateWriter manifest_w;
  rig.store->SaveManifest(manifest_w);
  StateWriter table_w;
  rig.table.SaveState(table_w);

  // Incarnation 2 restores the image, then everything it restored expires
  // before any new checkpoint is written. The image on disk still
  // references those block files, so they must survive: incarnation 3
  // (a second crash) restores the same image again.
  StateStore store2(rig.config);
  ASSERT_TRUE(store2.Init().ok());
  StateReader manifest_r(manifest_w.data());
  store2.RestoreManifest(manifest_r);
  StateTable restored;
  restored.set_key_field(0);
  restored.Bind(&store2, nullptr);
  StateReader table_r(table_w.data());
  restored.LoadState(table_r);
  store2.PinRestoredClaims(/*checkpoint_id=*/7);
  store2.GcOrphanFiles();
  const size_t files_after_restore = ListDir(rig.config.spill_dir).size();
  ASSERT_GT(files_after_restore, 0u);

  restored.Expire(100 * kSecond);
  EXPECT_EQ(restored.size(), 0u);
  EXPECT_EQ(ListDir(rig.config.spill_dir).size(), files_after_restore);

  {
    StateStore store3(rig.config);
    ASSERT_TRUE(store3.Init().ok());
    StateReader mr(manifest_w.data());
    store3.RestoreManifest(mr);
    StateTable again;
    again.set_key_field(0);
    again.Bind(&store3, nullptr);
    StateReader tr(table_w.data());
    again.LoadState(tr);
    store3.PinRestoredClaims(7);
    store3.GcOrphanFiles();
    EXPECT_EQ(ProbeAll(again, 0, 100 * kSecond).size(), 20u);
  }

  // Once the next checkpoint lands and keep-N prunes the restored image's
  // pin, the deferred unlinks finally run.
  store2.OnCheckpoint(/*checkpoint_id=*/8, /*keep=*/1);
  EXPECT_TRUE(ListDir(rig.config.spill_dir).empty());
}

// --- disk faults ---

TEST(StateStoreTest, DiskStallChargesVirtualTime) {
  SpillRig rig("stall");
  rig.Fill(30);
  ASSERT_GT(rig.table.num_spilled_blocks(), 0u);

  FaultSpec fault;
  fault.kind = FaultKind::kDiskStall;
  fault.start = 0;
  fault.duration = 1000 * kSecond;
  fault.magnitude = 5 * kMillisecond;
  rig.store->ArmFault(fault, /*run_seed=*/42);

  rig.table.BeginStep(/*now=*/kSecond);
  std::vector<Tuple> rows = ProbeAll(rig.table, 0, 100 * kSecond);
  EXPECT_EQ(rows.size(), 30u);  // stalls delay, never corrupt
  Duration stalled = rig.table.TakeStall();
  EXPECT_GT(stalled, 0);
  EXPECT_EQ(stalled % (5 * kMillisecond), 0);
  EXPECT_EQ(rig.table.TakeStall(), 0);  // drained
  EXPECT_GT(rig.store->fault_events(), 0u);
  EXPECT_GT(rig.store->stats().stalls, 0u);
}

TEST(StateStoreTest, EvictionStallIsChargedToCallerNotVictim) {
  SpillRig rig("stallcaller");
  // A second table holding the oldest (and therefore first-evicted) blocks,
  // all hot: no MaybeEvict between appends.
  StateTable victim;
  victim.set_name("victim");
  victim.set_key_field(0);
  victim.Bind(rig.store.get(), nullptr);
  for (int i = 0; i < 10; ++i) victim.Append(Row(i * kSecond + 1, i));

  FaultSpec fault;
  fault.kind = FaultKind::kDiskStall;
  fault.start = kSecond;
  fault.duration = 1000 * kSecond;
  fault.magnitude = 5 * kMillisecond;
  rig.store->ArmFault(fault, /*run_seed=*/42);

  // Only the caller's step is inside the fault window; the victim table
  // never begins a step (its now_ stays 0, outside the window). The spill
  // penalties must land on the caller — the step actually running — not on
  // the table that happened to own the evicted blocks.
  rig.table.BeginStep(/*now=*/2 * kSecond);
  for (int i = 0; i < 10; ++i) {
    rig.table.Append(Row(100 * kSecond + i, i));
    rig.table.MaybeEvict();
  }
  EXPECT_GT(rig.store->stats().spills, 0u);
  EXPECT_GT(rig.table.TakeStall(), 0);
  EXPECT_EQ(victim.TakeStall(), 0);
}

TEST(StateStoreTest, WideProbeEvictsBehindToStayNearBudget) {
  SpillRig rig("evictbehind");
  rig.Fill(50);
  ASSERT_GT(rig.table.num_spilled_blocks(), 0u);

  // A probe spanning the whole window loads every spilled block, but must
  // not accumulate them: each is dropped again once delivered (its file is
  // still valid, so the re-drop is free), bounding peak residency by the
  // budget plus the block in flight.
  std::vector<Tuple> rows = ProbeAll(rig.table, 0, 100 * kSecond);
  ASSERT_EQ(rows.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rows[i].value(1).int64_value(), i);
  }
  const uint64_t one_row = EstimateTupleBytes(Row(0, 0, 0));
  EXPECT_LE(rig.table.hot_bytes(), rig.config.mem_budget + one_row);

  // The blocks are reloadable: a second pass delivers everything again.
  rows = ProbeAll(rig.table, 0, 100 * kSecond);
  EXPECT_EQ(rows.size(), 50u);
  EXPECT_LE(rig.table.hot_bytes(), rig.config.mem_budget + one_row);
}

TEST(StateStoreTest, DiskFailShedsUnderShedPolicy) {
  SpillRig rig("shed", /*budget=*/256, OverloadPolicy::kShedOldest);
  FaultSpec fault;
  fault.kind = FaultKind::kDiskFail;
  fault.start = 0;
  fault.duration = 1000 * kSecond;
  fault.probability = 1.0;  // every spill write fails
  rig.store->ArmFault(fault, 42);
  rig.table.BeginStep(kSecond);
  rig.Fill(30);
  StorageStats stats = rig.store->stats();
  EXPECT_GT(stats.spill_failures, 0u);
  EXPECT_GT(stats.shed_rows, 0u);
  EXPECT_LT(rig.table.size(), 30u);       // rows were shed
  EXPECT_LE(rig.table.hot_bytes(), 256u);  // but the budget held
}

TEST(StateStoreTest, DiskFailBlocksPolicyKeepsStateHotOverBudget) {
  SpillRig rig("holdhot", /*budget=*/256, OverloadPolicy::kBlockSource);
  FaultSpec fault;
  fault.kind = FaultKind::kDiskFail;
  fault.start = 0;
  fault.duration = 1000 * kSecond;
  fault.probability = 1.0;
  rig.store->ArmFault(fault, 42);
  rig.table.BeginStep(kSecond);
  rig.Fill(30);
  // Nothing shed: the store degrades to in-memory (over budget) until the
  // disk heals.
  EXPECT_EQ(rig.table.size(), 30u);
  EXPECT_GT(rig.store->stats().spill_failures, 0u);
  EXPECT_EQ(rig.store->stats().shed_rows, 0u);
  std::vector<Tuple> rows = ProbeAll(rig.table, 0, 100 * kSecond);
  EXPECT_EQ(rows.size(), 30u);
}

// --- metrics surface ---

TEST(StateStoreTest, StatsPublishToRegistry) {
  SpillRig rig("metrics");
  rig.Fill(30);
  (void)ProbeAll(rig.table, 0, 100 * kSecond);
  StorageStats stats = rig.store->stats();
  EXPECT_GT(stats.hot_bytes + stats.spilled_bytes, 0u);
  EXPECT_EQ(stats.blocks_resident + stats.blocks_spilled,
            rig.table.num_blocks());
}

// --- helpers ---

TEST(StateStoreHelpersTest, EstimateTupleBytesIsDeterministic) {
  Tuple t = Row(123, 4, 5);
  EXPECT_EQ(EstimateTupleBytes(t), EstimateTupleBytes(t));
  EXPECT_GT(EstimateTupleBytes(t), 0u);
}

TEST(StateStoreHelpersTest, HashValueConsistentWithEquality) {
  EXPECT_EQ(HashValue(Value(static_cast<int64_t>(7))),
            HashValue(Value(static_cast<int64_t>(7))));
  EXPECT_NE(HashValue(Value(static_cast<int64_t>(7))),
            HashValue(Value(static_cast<int64_t>(8))));
  EXPECT_EQ(HashValue(Value(1.5)), HashValue(Value(1.5)));
  EXPECT_EQ(HashValue(Value("abc")), HashValue(Value("abc")));
}

}  // namespace
}  // namespace dsms
