// Unit tests for the EtsGate: the policy layer deciding whether a source
// generates an on-demand ETS (mode, demand guard, release-bound guard,
// min-interval throttle, per-source bookkeeping).

#include "exec/ets_policy.h"

#include <gtest/gtest.h>

#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "metrics/order_validator.h"
#include "operators/source.h"

namespace dsms {
namespace {

struct GateRig {
  explicit GateRig(TimestampKind kind = TimestampKind::kInternal,
                   Duration skew = 0)
      : source("S", 0, kind, skew) {
    source.AddOutput(&out);
  }
  StreamBuffer out{"out"};
  Source source;
};

EtsPolicy OnDemand(Duration min_interval = 0) {
  EtsPolicy policy;
  policy.mode = EtsMode::kOnDemand;
  policy.min_interval = min_interval;
  return policy;
}

TEST(EtsGateTest, NoneModeNeverGenerates) {
  GateRig rig;
  EtsGate gate(EtsPolicy{});  // mode = kNone
  EXPECT_FALSE(gate.MaybeGenerate(&rig.source, 100, true, kMinTimestamp));
  EXPECT_EQ(gate.generated(), 0u);
  EXPECT_TRUE(rig.out.empty());
}

TEST(EtsGateTest, DemandGuard) {
  GateRig rig;
  EtsGate gate(OnDemand());
  EXPECT_FALSE(gate.MaybeGenerate(&rig.source, 100,
                                  /*downstream_idle_waiting=*/false,
                                  kMinTimestamp));
  EXPECT_TRUE(gate.MaybeGenerate(&rig.source, 100, true, kMinTimestamp));
  EXPECT_EQ(gate.generated(), 1u);
  ASSERT_EQ(rig.out.size(), 1u);
  EXPECT_EQ(rig.out.Front().timestamp(), 100);
}

TEST(EtsGateTest, ReleaseBoundGuard) {
  GateRig rig;
  EtsGate gate(OnDemand());
  // The blocked result needs a bound of 500; at now=100 the internal ETS
  // (=now) cannot release it, so generating would only busy-spin.
  EXPECT_FALSE(gate.MaybeGenerate(&rig.source, 100, true, /*release=*/500));
  EXPECT_TRUE(rig.out.empty());
  EXPECT_TRUE(gate.MaybeGenerate(&rig.source, 500, true, 500));
  EXPECT_EQ(rig.out.Front().timestamp(), 500);
}

TEST(EtsGateTest, NonAdvancingBoundSuppressed) {
  GateRig rig;
  EtsGate gate(OnDemand());
  ASSERT_TRUE(gate.MaybeGenerate(&rig.source, 100, true, kMinTimestamp));
  // Same instant again: the source already promised 100.
  EXPECT_FALSE(gate.MaybeGenerate(&rig.source, 100, true, kMinTimestamp));
  EXPECT_TRUE(gate.MaybeGenerate(&rig.source, 101, true, kMinTimestamp));
  EXPECT_EQ(gate.generated(), 2u);
}

TEST(EtsGateTest, MinIntervalThrottlePerSource) {
  GateRig rig_a;
  StreamBuffer out_b{"outB"};
  Source source_b("B", 1, TimestampKind::kInternal);
  source_b.AddOutput(&out_b);

  EtsGate gate(OnDemand(/*min_interval=*/1000));
  ASSERT_TRUE(gate.MaybeGenerate(&rig_a.source, 100, true, kMinTimestamp));
  // Throttled on A...
  EXPECT_FALSE(gate.MaybeGenerate(&rig_a.source, 500, true, kMinTimestamp));
  // ...but B has its own budget.
  EXPECT_TRUE(gate.MaybeGenerate(&source_b, 500, true, kMinTimestamp));
  // A recovers after the interval.
  EXPECT_TRUE(gate.MaybeGenerate(&rig_a.source, 1100, true, kMinTimestamp));
}

TEST(EtsGateTest, ExternalBeforeFirstTupleCannotBound) {
  GateRig rig(TimestampKind::kExternal, /*skew=*/100);
  EtsGate gate(OnDemand());
  EXPECT_FALSE(gate.MaybeGenerate(&rig.source, 1000, true, kMinTimestamp));
  rig.source.IngestExternal(900, {}, 1000);
  rig.out.Pop();  // drain the data tuple
  // t + tau − delta = 900 + 500 − 100 = 1300.
  ASSERT_TRUE(gate.MaybeGenerate(&rig.source, 1500, true, kMinTimestamp));
  EXPECT_EQ(rig.out.Front().timestamp(), 1300);
}

TEST(EtsGateTest, LatentSourceNeverGenerates) {
  GateRig rig(TimestampKind::kLatent);
  EtsGate gate(OnDemand());
  EXPECT_FALSE(gate.MaybeGenerate(&rig.source, 1000, true, kMinTimestamp));
}

TEST(EtsModeTest, Names) {
  EXPECT_STREQ(EtsModeToString(EtsMode::kNone), "none");
  EXPECT_STREQ(EtsModeToString(EtsMode::kOnDemand), "on-demand");
}

TEST(OrderValidatorTest, CountsOutOfOrderPushes) {
  StreamBuffer buffer("b");
  OrderValidator validator;
  buffer.AddListener(&validator);
  buffer.Push(Tuple::MakeData(10, {}));
  buffer.Push(Tuple::MakePunctuation(20));
  buffer.Push(Tuple::MakeData(20, {}));  // equal is fine
  EXPECT_EQ(validator.violations(), 0u);
  buffer.Push(Tuple::MakeData(15, {}));  // below the promised 20
  EXPECT_EQ(validator.violations(), 1u);
  EXPECT_NE(validator.first_violation().find("'b'"), std::string::npos);
  validator.Reset();
  EXPECT_EQ(validator.violations(), 0u);
}

TEST(OrderValidatorTest, IgnoresLatentTuples) {
  StreamBuffer buffer("b");
  OrderValidator validator;
  buffer.AddListener(&validator);
  buffer.Push(Tuple::MakeData(10, {}));
  buffer.Push(Tuple::MakeLatent({}));
  EXPECT_EQ(validator.violations(), 0u);
}

TEST(OrderValidatorTest, TracksBuffersIndependently) {
  StreamBuffer a("a");
  StreamBuffer b("b");
  OrderValidator validator;
  a.AddListener(&validator);
  b.AddListener(&validator);
  a.Push(Tuple::MakeData(100, {}));
  b.Push(Tuple::MakeData(5, {}));  // lower ts, different buffer: fine
  EXPECT_EQ(validator.violations(), 0u);
}

TEST(MultiListenerTest, AllListenersNotified) {
  StreamBuffer buffer("b");
  OrderValidator v1;
  OrderValidator v2;
  buffer.AddListener(&v1);
  buffer.AddListener(&v2);
  buffer.Push(Tuple::MakeData(10, {}));
  buffer.Push(Tuple::MakeData(5, {}));
  EXPECT_EQ(v1.violations(), 1u);
  EXPECT_EQ(v2.violations(), 1u);
  buffer.ReplaceListeners(nullptr);  // detaches both
  buffer.Push(Tuple::MakeData(1, {}));
  EXPECT_EQ(v1.violations(), 1u);
}

}  // namespace
}  // namespace dsms
