// Coarse-timestamp (simultaneous tuples, Section 4.1) and heartbeat
// edge-case coverage for Source and Simulation.

#include <memory>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/clock.h"
#include "core/tuple.h"
#include "exec/dfs_executor.h"
#include "graph/graph_builder.h"
#include "operators/source.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"

namespace dsms {
namespace {

TEST(SourceGranularityTest, StampsQuantized) {
  StreamBuffer out("out");
  Source source("s", 0, TimestampKind::kInternal);
  source.AddOutput(&out);
  source.set_timestamp_granularity(kSecond);
  source.Ingest({}, 1'700'000);  // 1.7 s
  EXPECT_EQ(out.Pop().timestamp(), kSecond);
  source.Ingest({}, 1'999'999);
  EXPECT_EQ(out.Pop().timestamp(), kSecond);  // simultaneous with previous
  source.Ingest({}, 2'000'001);
  EXPECT_EQ(out.Pop().timestamp(), 2 * kSecond);
}

TEST(SourceGranularityTest, EtsQuantizedConsistently) {
  StreamBuffer out("out");
  Source source("s", 0, TimestampKind::kInternal);
  source.AddOutput(&out);
  source.set_timestamp_granularity(kSecond);
  source.Ingest({}, 1'700'000);
  out.Pop();
  // An ETS at 1.9 s can only promise the quantized bound 1 s == the last
  // stamp: not advancing, suppressed.
  EXPECT_FALSE(source.ComputeEts(1'900'000).has_value());
  // At 2.1 s the quantized bound 2 s advances.
  auto ets = source.ComputeEts(2'100'000);
  ASSERT_TRUE(ets.has_value());
  EXPECT_EQ(*ets, 2 * kSecond);
}

TEST(SourceGranularityTest, RejectsNonPositive) {
  Source source("s", 0, TimestampKind::kInternal);
  EXPECT_DEATH(source.set_timestamp_granularity(0), "");
}

TEST(SourceGranularityTest, QuantizedStreamStaysOrderedThroughUnion) {
  GraphBuilder builder;
  Source* s1 = builder.AddSource("S1", TimestampKind::kInternal);
  Source* s2 = builder.AddSource("S2", TimestampKind::kInternal);
  s1->set_timestamp_granularity(100 * kMillisecond);
  s2->set_timestamp_granularity(100 * kMillisecond);
  Union* u = builder.AddUnion("U");
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s1, u);
  builder.Connect(s2, u);
  builder.Connect(u, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  sink->set_collect(true);

  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  DfsExecutor executor(graph->get(), &clock, config);
  Simulation sim(graph->get(), &executor, &clock);
  sim.AddFeed(s1, std::make_unique<PoissonProcess>(40.0, 1));
  sim.AddFeed(s2, std::make_unique<PoissonProcess>(40.0, 2));
  sim.Run(20 * kSecond);

  EXPECT_EQ(sim.order_validator().violations(), 0u)
      << sim.order_validator().first_violation();
  EXPECT_GT(sink->data_delivered(), 1000u);
  Timestamp previous = kMinTimestamp;
  for (const Tuple& t : sink->collected()) {
    EXPECT_GE(t.timestamp(), previous);
    previous = t.timestamp();
    EXPECT_EQ(t.timestamp() % (100 * kMillisecond), 0);
  }
}

TEST(SimulationHeartbeatTest, ExternalHeartbeatPromisesNowMinusSkew) {
  GraphBuilder builder;
  Source* s1 = builder.AddSource("S1", TimestampKind::kExternal,
                                 /*skew=*/100 * kMillisecond);
  Source* s2 = builder.AddSource("S2", TimestampKind::kExternal,
                                 /*skew=*/100 * kMillisecond);
  Union* u = builder.AddUnion("U");
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s1, u);
  builder.Connect(s2, u);
  builder.Connect(u, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());

  VirtualClock clock;
  ExecConfig config;  // no ETS: heartbeats only
  DfsExecutor executor(graph->get(), &clock, config);
  Simulation sim(graph->get(), &executor, &clock);
  sim.AddFeed(s1, std::make_unique<ConstantRateProcess>(20.0));
  sim.AddHeartbeat(s2, /*period=*/50 * kMillisecond);
  sim.Run(20 * kSecond);

  // A heartbeat promising `now` on the external stream would be unsound;
  // the conservative now − δ bound keeps every arc order-clean while still
  // releasing S1's tuples with ~δ + period/2 delay.
  EXPECT_EQ(sim.order_validator().violations(), 0u)
      << sim.order_validator().first_violation();
  EXPECT_GT(sink->data_delivered(), 350u);
  EXPECT_LT(sink->latency().mean_ms(), 250.0);
  EXPECT_GT(sink->latency().mean_ms(), 50.0);
}

}  // namespace
}  // namespace dsms
