#include "common/status.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace dsms {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkStatusHelper) {
  EXPECT_TRUE(OkStatus().ok());
  EXPECT_EQ(OkStatus(), Status());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad window");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad window");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad window");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << NotFoundError("missing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(NotFoundError("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

TEST(ResultTest, AccessingErrorValueDies) {
  Result<int> result(InternalError("boom"));
  EXPECT_DEATH(result.value(), "boom");
}

Status FailsFirst() {
  DSMS_RETURN_IF_ERROR(InvalidArgumentError("first"));
  return InternalError("second");
}

Status Passes() {
  DSMS_RETURN_IF_ERROR(OkStatus());
  return OkStatus();
}

TEST(ResultTest, ReturnIfErrorPropagatesFirstError) {
  EXPECT_EQ(FailsFirst().message(), "first");
  EXPECT_TRUE(Passes().ok());
}

}  // namespace
}  // namespace dsms
