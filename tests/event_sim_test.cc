#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"

#include "common/clock.h"
#include "common/time.h"
#include "core/tuple.h"
#include "exec/dfs_executor.h"
#include "graph/graph_builder.h"
#include "sim/arrival_process.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace dsms {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Schedule(30, [&](Timestamp) { fired.push_back(3); });
  queue.Schedule(10, [&](Timestamp) { fired.push_back(1); });
  queue.Schedule(20, [&](Timestamp) { fired.push_back(2); });
  EXPECT_EQ(queue.NextTime(), 10);
  EXPECT_EQ(queue.FireDue(25), 2);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.FireDue(100), 1);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    queue.Schedule(10, [&fired, i](Timestamp) { fired.push_back(i); });
  }
  queue.FireDue(10);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ActionsMayScheduleMoreDueEvents) {
  EventQueue queue;
  int count = 0;
  queue.Schedule(5, [&](Timestamp) {
    ++count;
    queue.Schedule(6, [&](Timestamp) { ++count; });
  });
  EXPECT_EQ(queue.FireDue(10), 2);
  EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, NothingDueNothingFires) {
  EventQueue queue;
  queue.Schedule(100, [](Timestamp) {});
  EXPECT_EQ(queue.FireDue(99), 0);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(ArrivalProcessTest, PoissonMeanGap) {
  PoissonProcess process(50.0, 7);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += DurationToSeconds(process.NextGap());
  EXPECT_NEAR(total / n, 1.0 / 50.0, 0.002);
}

TEST(ArrivalProcessTest, ConstantRateExact) {
  ConstantRateProcess process(10.0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(process.NextGap(), 100000);
}

TEST(ArrivalProcessTest, BurstyLongRunRateBetweenRegimes) {
  BurstyProcess process(/*burst_rate=*/500.0, /*idle_rate=*/1.0,
                        /*mean_burst_length=*/200 * kMillisecond,
                        /*mean_idle_length=*/kSecond, /*seed=*/3);
  Duration total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += process.NextGap();
  double rate = n / DurationToSeconds(total);
  // Expected long-run rate = (500*0.2 + 1*1.0) / 1.2 ~= 84/s.
  EXPECT_GT(rate, 20.0);
  EXPECT_LT(rate, 200.0);
}

TEST(ArrivalProcessTest, BurstyIsActuallyBursty) {
  BurstyProcess process(1000.0, 0.1, 100 * kMillisecond, 10 * kSecond, 5);
  std::vector<Duration> gaps;
  for (int i = 0; i < 5000; ++i) gaps.push_back(process.NextGap());
  int tiny = 0;
  int huge = 0;
  for (Duration g : gaps) {
    if (g < 10 * kMillisecond) ++tiny;
    if (g > kSecond) ++huge;
  }
  EXPECT_GT(tiny, 100);  // burst-mode gaps ~1ms
  EXPECT_GT(huge, 5);    // idle-mode gaps ~10s
}

TEST(ArrivalProcessTest, TraceReplaysAndExhausts) {
  TraceProcess process({10, 25, 100});
  EXPECT_EQ(process.NextGap(), 10);
  EXPECT_EQ(process.NextGap(), 15);
  EXPECT_EQ(process.NextGap(), 75);
  EXPECT_LT(process.NextGap(), 0);
  EXPECT_LT(process.NextGap(), 0);
}

TEST(ArrivalProcessTest, TraceRejectsNonIncreasing) {
  EXPECT_DEATH(TraceProcess({10, 10}), "");
  EXPECT_DEATH(TraceProcess({10, 5}), "");
}

struct SimRig {
  explicit SimRig(TimestampKind kind = TimestampKind::kInternal,
                  Duration skew = 0, EtsMode ets = EtsMode::kOnDemand) {
    GraphBuilder builder;
    s1 = builder.AddSource("S1", kind, skew);
    s2 = builder.AddSource("S2", kind, skew);
    u = builder.AddUnion("U", kind != TimestampKind::kLatent);
    sink = builder.AddSink("OUT");
    builder.Connect(s1, u);
    builder.Connect(s2, u);
    builder.Connect(u, sink);
    auto built = builder.Build();
    DSMS_CHECK_OK(built.status());
    graph = std::move(built).value();
    ExecConfig config;
    config.ets.mode = ets;
    executor = std::make_unique<DfsExecutor>(graph.get(), &clock, config);
    sim = std::make_unique<Simulation>(graph.get(), executor.get(), &clock);
  }

  std::unique_ptr<QueryGraph> graph;
  VirtualClock clock;
  Source* s1;
  Source* s2;
  Union* u;
  Sink* sink;
  std::unique_ptr<DfsExecutor> executor;
  std::unique_ptr<Simulation> sim;
};

TEST(SimulationTest, DeliversTracedArrivals) {
  SimRig rig;
  rig.sim->AddFeed(rig.s1,
                   std::make_unique<TraceProcess>(std::vector<Timestamp>{
                       100000, 200000, 300000}));
  rig.sim->AddFeed(rig.s2, std::make_unique<TraceProcess>(
                               std::vector<Timestamp>{150000}));
  rig.sim->Run(kSecond);
  EXPECT_EQ(rig.s1->tuples_ingested(), 3u);
  EXPECT_EQ(rig.s2->tuples_ingested(), 1u);
  EXPECT_EQ(rig.sink->data_delivered(), 4u);
  EXPECT_EQ(rig.sim->now(), kSecond);
}

TEST(SimulationTest, ClockStopsAtHorizon) {
  SimRig rig;
  rig.sim->AddFeed(rig.s1, std::make_unique<ConstantRateProcess>(1.0));
  rig.sim->Run(10 * kSecond);
  EXPECT_EQ(rig.sim->now(), 10 * kSecond);
  // ~10 arrivals at 1/s within 10 s.
  EXPECT_NEAR(static_cast<double>(rig.s1->tuples_ingested()), 10.0, 1.0);
}

TEST(SimulationTest, RunCanBeResumed) {
  SimRig rig;
  rig.sim->AddFeed(rig.s1, std::make_unique<ConstantRateProcess>(10.0));
  rig.sim->Run(kSecond);
  uint64_t first = rig.s1->tuples_ingested();
  rig.sim->Run(2 * kSecond);
  EXPECT_GT(rig.s1->tuples_ingested(), first);
}

TEST(SimulationTest, HeartbeatInjectsPunctuation) {
  SimRig rig(TimestampKind::kInternal, 0, EtsMode::kNone);
  rig.sim->AddFeed(rig.s1, std::make_unique<ConstantRateProcess>(5.0));
  rig.sim->AddHeartbeat(rig.s2, /*period=*/100 * kMillisecond);
  rig.sim->Run(10 * kSecond);
  // Heartbeats on the empty stream release S1's tuples through the union,
  // which absorbs the punctuation itself.
  EXPECT_GT(rig.sink->data_delivered(), 40u);
  EXPECT_GT(rig.u->stats().punctuation_in, 40u);
}

TEST(SimulationTest, ExternalJitterRespectsSkewBound) {
  SimRig rig(TimestampKind::kExternal, /*skew=*/50 * kMillisecond);
  rig.sink->set_collect(true);
  rig.sim->AddFeed(rig.s1, std::make_unique<ConstantRateProcess>(20.0));
  rig.sim->AddFeed(rig.s2, std::make_unique<ConstantRateProcess>(20.0));
  rig.sim->Run(5 * kSecond);
  ASSERT_GT(rig.sink->collected().size(), 0u);
  Timestamp previous = kMinTimestamp;
  for (const Tuple& t : rig.sink->collected()) {
    // App timestamp lags arrival by less than the bound...
    EXPECT_LE(t.arrival_time() - t.timestamp(), 50 * kMillisecond);
    // ...and the merged output is still timestamp-ordered.
    EXPECT_GE(t.timestamp(), previous);
    previous = t.timestamp();
  }
}

TEST(SimulationTest, WarmupResetsLatencyMetrics) {
  SimRig rig(TimestampKind::kInternal, 0, EtsMode::kNone);
  // Only S1 feeds: every tuple blocks at the union for a long time before
  // the horizon, so pre-warmup latencies are huge. After warmup reset, the
  // recorder holds only post-warmup emissions.
  rig.sim->AddFeed(rig.s1, std::make_unique<ConstantRateProcess>(10.0));
  rig.sim->AddHeartbeat(rig.s2, kSecond);
  rig.sim->Run(30 * kSecond, /*warmup=*/20 * kSecond);
  // All emissions recorded after warmup: count well below total ingested.
  EXPECT_LT(rig.sink->latency().count(), rig.s1->tuples_ingested());
  EXPECT_GT(rig.sink->latency().count(), 0u);
}

TEST(SimulationTest, QueueTrackerSeesBuffers) {
  SimRig rig(TimestampKind::kInternal, 0, EtsMode::kNone);
  rig.sim->AddFeed(rig.s1, std::make_unique<ConstantRateProcess>(100.0));
  rig.sim->Run(kSecond);
  // S1 tuples pile up at the blocked union.
  EXPECT_GT(rig.sim->queue_tracker().peak_total(), 50);
  EXPECT_GT(rig.sim->queue_tracker().current_total(), 50);
}

TEST(SimulationTest, SequencePayloadNumbersTuples) {
  SimRig rig;
  rig.sink->set_collect(true);
  rig.sim->AddFeed(rig.s1, std::make_unique<TraceProcess>(
                               std::vector<Timestamp>{100, 200, 300}));
  rig.sim->Run(kSecond);
  ASSERT_EQ(rig.sink->collected().size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.sink->collected()[static_cast<size_t>(i)]
                  .value(0)
                  .int64_value(),
              i);
  }
}

}  // namespace
}  // namespace dsms
