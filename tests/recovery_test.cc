// Unit and chaos tests for the crash-recovery layer: WAL append/replay with
// torn-tail truncation, segment rotation and trimming, atomic checkpoint
// files with CRC fallback, durable sink truncation, the backoff-jitter
// schedule, the recovery plan statements, and the recovery.* metrics
// surface. The crashes here are simulated with file surgery (truncating and
// corrupting bytes the way an interrupted write would); the end-to-end
// kill-the-server exercise lives in recovery_loopback_test.cc.

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/time.h"
#include "core/tuple.h"
#include "json_validator.h"
#include "net/feed_client.h"
#include "obs/metrics_registry.h"
#include "recovery/checkpoint.h"
#include "recovery/durable_sink.h"
#include "recovery/recovery_manager.h"
#include "recovery/wal.h"
#include "sim/experiment_spec.h"
#include "test_seed.h"

namespace dsms {
namespace {

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

/// A per-test scratch directory, wiped before use so reruns start clean.
std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/dsms_recovery_" + tag;
  for (const std::string& name : ListDir(dir)) {
    std::remove((dir + "/" + name).c_str());
  }
  ::rmdir(dir.c_str());
  return dir;
}

std::vector<std::string> ListSegments(const std::string& dir) {
  std::vector<std::string> segments;
  for (const std::string& name : ListDir(dir)) {
    if (name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".seg") == 0) {
      segments.push_back(name);
    }
  }
  return segments;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(WalTest, RoundTripPreservesRecords) {
  const std::string dir = FreshDir("wal_roundtrip");
  WalOptions options;
  options.dir = dir;
  WalWriter writer(options);
  ASSERT_TRUE(writer.Open(0).ok());
  for (int i = 0; i < 10; ++i) {
    std::string frame = "frame-" + std::to_string(i);
    ASSERT_TRUE(writer.Append(i * 10 * kMillisecond, i % 3, frame).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  EXPECT_EQ(writer.next_index(), 10u);
  EXPECT_EQ(writer.appends(), 10u);

  std::vector<WalRecord> records;
  uint64_t next = 0, torn = 0;
  ASSERT_TRUE(ReadWalTail(dir, 0, &records, &next, &torn).ok());
  EXPECT_EQ(next, 10u);
  EXPECT_EQ(torn, 0u);
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records[i].index, static_cast<uint64_t>(i));
    EXPECT_EQ(records[i].arrival, i * 10 * kMillisecond);
    EXPECT_EQ(records[i].conn_id, i % 3);
    EXPECT_EQ(records[i].frame, "frame-" + std::to_string(i));
  }
}

TEST(WalTest, ReadFromIndexSkipsCoveredPrefix) {
  const std::string dir = FreshDir("wal_from");
  WalOptions options;
  options.dir = dir;
  WalWriter writer(options);
  ASSERT_TRUE(writer.Open(0).ok());
  for (int i = 0; i < 8; ++i) {
    // std::string("f") + ... dodges a GCC 12 -Wrestrict false positive in
    // the operator+(const char*, string&&) insert path (PR 105329).
    ASSERT_TRUE(writer.Append(i, 1, std::string("f") + std::to_string(i)).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  std::vector<WalRecord> records;
  uint64_t next = 0, torn = 0;
  ASSERT_TRUE(ReadWalTail(dir, 5, &records, &next, &torn).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().index, 5u);
  EXPECT_EQ(records.back().index, 7u);
  EXPECT_EQ(next, 8u);
}

TEST(WalTest, RotationSealsSegmentsAndTrimReclaimsThem) {
  const std::string dir = FreshDir("wal_rotate");
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 48;  // tiny: every couple of appends rotates
  WalWriter writer(options);
  ASSERT_TRUE(writer.Open(0).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(writer.Append(i, 1, "payload-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  const size_t segments_before = ListSegments(dir).size();
  EXPECT_GT(segments_before, 2u);

  ASSERT_TRUE(writer.TrimBelow(8).ok());
  EXPECT_LT(ListSegments(dir).size(), segments_before);

  // Everything at or past the trim point must survive; the trimmed prefix
  // may partially survive (trim works at sealed-segment granularity).
  std::vector<WalRecord> records;
  uint64_t next = 0, torn = 0;
  ASSERT_TRUE(ReadWalTail(dir, 8, &records, &next, &torn).ok());
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().index, 8u);
  EXPECT_EQ(records.back().index, 11u);
  EXPECT_EQ(next, 12u);
}

TEST(WalTest, TornTailIsTruncatedAndAppendContinues) {
  const std::string dir = FreshDir("wal_torn");
  WalOptions options;
  options.dir = dir;
  {
    WalWriter writer(options);
    ASSERT_TRUE(writer.Open(0).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(writer.Append(i, 1, "frame-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(writer.Sync().ok());
  }
  // A crash mid-append leaves a partial record at the end of the newest
  // segment. Simulate it by appending garbage that parses as a length
  // prefix with no body.
  std::vector<std::string> segments = ListSegments(dir);
  ASSERT_FALSE(segments.empty());
  const std::string tail_path = dir + "/" + segments.back();
  const size_t clean_size = ReadFile(tail_path).size();
  {
    std::ofstream out(tail_path, std::ios::binary | std::ios::app);
    out.write("\x20\x00\x00\x00\xde\xad", 6);
  }

  std::vector<WalRecord> records;
  uint64_t next = 0, torn = 0;
  ASSERT_TRUE(ReadWalTail(dir, 0, &records, &next, &torn).ok());
  EXPECT_EQ(records.size(), 5u);
  EXPECT_EQ(next, 5u);
  EXPECT_EQ(torn, 6u);
  // The torn bytes were physically removed, so a writer reopening the log
  // appends cleanly right after the last good record.
  EXPECT_EQ(ReadFile(tail_path).size(), clean_size);
  WalWriter writer(options);
  ASSERT_TRUE(writer.Open(next).ok());
  ASSERT_TRUE(writer.Append(99, 2, "after-crash").ok());
  ASSERT_TRUE(writer.Sync().ok());
  records.clear();
  ASSERT_TRUE(ReadWalTail(dir, 0, &records, &next, &torn).ok());
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records.back().frame, "after-crash");
  EXPECT_EQ(records.back().index, 5u);
}

TEST(WalTest, CorruptedRecordEndsTheUsableLog) {
  const std::string dir = FreshDir("wal_crc");
  WalOptions options;
  options.dir = dir;
  {
    WalWriter writer(options);
    ASSERT_TRUE(writer.Open(0).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(writer.Append(i, 1, "frame-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(writer.Sync().ok());
  }
  // Flip one byte in the last record's payload: its CRC fails, so the log
  // must end at record 3 — bit rot cannot smuggle a wrong frame into
  // replay.
  std::vector<std::string> segments = ListSegments(dir);
  ASSERT_FALSE(segments.empty());
  const std::string tail_path = dir + "/" + segments.back();
  std::string bytes = ReadFile(tail_path);
  bytes[bytes.size() - 2] ^= 0x40;
  WriteFile(tail_path, bytes);

  std::vector<WalRecord> records;
  uint64_t next = 0, torn = 0;
  ASSERT_TRUE(ReadWalTail(dir, 0, &records, &next, &torn).ok());
  EXPECT_EQ(records.size(), 4u);
  EXPECT_EQ(next, 4u);
  EXPECT_GT(torn, 0u);
}

CheckpointImage MakeImage(uint64_t id) {
  CheckpointImage image;
  image.checkpoint_id = id;
  image.clock_now = id * kSecond;
  image.frontier = id * kSecond - 100 * kMillisecond;
  image.wal_replay_from = id * 37;
  image.operator_blobs = {{1, "op-one"}, {2, std::string("b\0b", 3)}};
  image.buffer_blobs = {{7, "buffer-seven"}};
  image.executor_blob = "exec-state";
  image.net_blob = "net-state";
  image.durable_seqs = {{0, id * 10}, {3, 4}};
  image.sink_offsets = {{"OUT", 1234}};
  return image;
}

TEST(CheckpointTest, RoundTripPreservesEveryField) {
  const std::string dir = FreshDir("ckpt_roundtrip");
  ASSERT_TRUE(WriteCheckpointFile(dir, MakeImage(3), /*keep=*/2).ok());
  uint64_t fallbacks = 0;
  Result<CheckpointImage> loaded = LoadLatestCheckpoint(dir, &fallbacks);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(fallbacks, 0u);
  const CheckpointImage want = MakeImage(3);
  EXPECT_EQ(loaded->checkpoint_id, want.checkpoint_id);
  EXPECT_EQ(loaded->clock_now, want.clock_now);
  EXPECT_EQ(loaded->frontier, want.frontier);
  EXPECT_EQ(loaded->wal_replay_from, want.wal_replay_from);
  EXPECT_EQ(loaded->operator_blobs, want.operator_blobs);
  EXPECT_EQ(loaded->buffer_blobs, want.buffer_blobs);
  EXPECT_EQ(loaded->executor_blob, want.executor_blob);
  EXPECT_EQ(loaded->net_blob, want.net_blob);
  EXPECT_EQ(loaded->durable_seqs, want.durable_seqs);
  EXPECT_EQ(loaded->sink_offsets, want.sink_offsets);
}

TEST(CheckpointTest, PruningKeepsOnlyTheNewest) {
  const std::string dir = FreshDir("ckpt_prune");
  for (uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(WriteCheckpointFile(dir, MakeImage(id), /*keep=*/2).ok());
  }
  size_t ckpt_files = 0;
  for (const std::string& name : ListDir(dir)) {
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".ckpt") == 0) {
      ++ckpt_files;
    }
  }
  EXPECT_EQ(ckpt_files, 2u);
  Result<CheckpointImage> loaded = LoadLatestCheckpoint(dir, nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->checkpoint_id, 4u);
}

TEST(CheckpointTest, CorruptNewestFallsBackToPrevious) {
  const std::string dir = FreshDir("ckpt_corrupt");
  ASSERT_TRUE(WriteCheckpointFile(dir, MakeImage(1), /*keep=*/5).ok());
  ASSERT_TRUE(WriteCheckpointFile(dir, MakeImage(2), /*keep=*/5).ok());
  // Flip a byte in the middle of the newest file: its CRC no longer
  // validates, so the loader must reject it and use checkpoint 1.
  std::string newest;
  for (const std::string& name : ListDir(dir)) {
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".ckpt") == 0) {
      newest = name;  // sorted ascending; the last .ckpt wins
    }
  }
  ASSERT_FALSE(newest.empty());
  std::string bytes = ReadFile(dir + "/" + newest);
  bytes[bytes.size() / 2] ^= 0x01;
  WriteFile(dir + "/" + newest, bytes);

  uint64_t fallbacks = 0;
  Result<CheckpointImage> loaded = LoadLatestCheckpoint(dir, &fallbacks);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->checkpoint_id, 1u);
  EXPECT_EQ(fallbacks, 1u);
}

TEST(CheckpointTest, CrashBeforeRenameLeavesTmpFileThatIsIgnored) {
  const std::string dir = FreshDir("ckpt_tmp");
  ASSERT_TRUE(WriteCheckpointFile(dir, MakeImage(1), /*keep=*/5).ok());
  // A crash between writing the temp file and renaming it leaves a .tmp
  // behind; the loader must not mistake it for a checkpoint.
  WriteFile(dir + "/checkpoint-00000000000000000002.ckpt.tmp",
            "half-written garbage");
  uint64_t fallbacks = 0;
  Result<CheckpointImage> loaded = LoadLatestCheckpoint(dir, &fallbacks);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->checkpoint_id, 1u);
  EXPECT_EQ(fallbacks, 0u);
}

TEST(CheckpointTest, EmptyDirectoryIsNotFound) {
  const std::string dir = FreshDir("ckpt_empty");
  Result<CheckpointImage> loaded = LoadLatestCheckpoint(dir, nullptr);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(DurableSinkTest, ResumeOffsetTruncatesReplayedSuffix) {
  const std::string dir = FreshDir("sink_resume");
  Tuple first = Tuple::MakeData(1 * kSecond, {Value(int64_t{1})});
  Tuple second = Tuple::MakeData(2 * kSecond, {Value(int64_t{2})});
  Tuple replacement = Tuple::MakeData(3 * kSecond, {Value(int64_t{3})});

  DurableSink sink(dir, "OUT");
  ASSERT_TRUE(sink.Open(0).ok());
  sink.Write(first);
  const uint64_t cut = sink.offset();
  sink.Write(second);
  ASSERT_TRUE(sink.Flush().ok());
  const std::string full = ReadFile(sink.path());
  EXPECT_EQ(full, first.ToString() + "\n" + second.ToString() + "\n");

  // Recovery truncates back to the checkpointed offset and deterministic
  // replay regenerates the suffix — exactly-once means the prefix is never
  // rewritten and the discarded suffix never double-counts.
  DurableSink resumed(dir, "OUT");
  ASSERT_TRUE(resumed.Open(cut).ok());
  EXPECT_EQ(ReadFile(resumed.path()).size(), cut);
  resumed.Write(replacement);
  ASSERT_TRUE(resumed.Flush().ok());
  EXPECT_EQ(ReadFile(resumed.path()),
            first.ToString() + "\n" + replacement.ToString() + "\n");
}

TEST(BackoffTest, SameSeedSameDelaySequence) {
  const uint64_t seed = test::TestSeedOr(42);
  DSMS_TRACE_SEED(seed);
  FeedClientOptions options;
  options.backoff_base = 100 * kMillisecond;
  options.backoff_max = 5 * kSecond;
  Pcg32 a(seed), b(seed);
  for (int attempt = 0; attempt < 12; ++attempt) {
    EXPECT_EQ(ComputeBackoffDelay(attempt, options, a),
              ComputeBackoffDelay(attempt, options, b))
        << "attempt " << attempt;
  }
}

TEST(BackoffTest, DelaysGrowExponentiallyWithinJitterBounds) {
  const uint64_t seed = test::TestSeedOr(7);
  DSMS_TRACE_SEED(seed);
  FeedClientOptions options;
  options.backoff_base = 100 * kMillisecond;
  options.backoff_max = 5 * kSecond;
  Pcg32 rng(seed);
  for (int attempt = 0; attempt < 12; ++attempt) {
    Duration nominal = options.backoff_base;
    for (int i = 0; i < attempt && nominal < options.backoff_max; ++i) {
      nominal *= 2;
    }
    nominal = std::min(nominal, options.backoff_max);
    Duration delay = ComputeBackoffDelay(attempt, options, rng);
    EXPECT_GE(delay, nominal / 2) << "attempt " << attempt;
    EXPECT_LT(delay, nominal) << "attempt " << attempt;
  }
}

constexpr char kRecoveryPlan[] = R"(
stream A ts=internal
sink OUT in=A
run horizon=2s
wal dir=/tmp/x sync=interval sync_interval_bytes=512 segment_bytes=8192
checkpoint horizon=500ms keep=3
crash at=1s
)";

TEST(RecoveryPlanTest, StatementsPopulateTheRecoverySpec) {
  Result<Experiment> experiment =
      ParseExperiment(kRecoveryPlan, /*require_feeds=*/false);
  ASSERT_TRUE(experiment.ok());
  const RecoverySpec& spec = experiment->recovery;
  EXPECT_TRUE(spec.wal);
  EXPECT_EQ(spec.dir, "/tmp/x");
  EXPECT_EQ(spec.sync, WalSyncPolicy::kInterval);
  EXPECT_EQ(spec.sync_interval_bytes, 512u);
  EXPECT_EQ(spec.segment_bytes, 8192u);
  EXPECT_TRUE(spec.checkpoint);
  EXPECT_EQ(spec.checkpoint_horizon, 500 * kMillisecond);
  EXPECT_EQ(spec.keep, 3);
  EXPECT_EQ(spec.crash_at, 1 * kSecond);
}

TEST(RecoveryPlanTest, AbsentStatementsLeaveRecoveryDisabled) {
  Result<Experiment> experiment = ParseExperiment(
      "stream A ts=internal\nsink OUT in=A\nrun horizon=1s\n",
      /*require_feeds=*/false);
  ASSERT_TRUE(experiment.ok());
  EXPECT_FALSE(experiment->recovery.wal);
  EXPECT_FALSE(experiment->recovery.checkpoint);
  EXPECT_EQ(experiment->recovery.crash_at, 0);
}

TEST(RecoveryPlanTest, CheckpointWithoutWalIsRejected) {
  Result<Experiment> experiment = ParseExperiment(
      "stream A ts=internal\nsink OUT in=A\ncheckpoint horizon=1s\n",
      /*require_feeds=*/false);
  ASSERT_FALSE(experiment.ok());
  EXPECT_NE(experiment.status().message().find("requires a wal"),
            std::string::npos);
}

TEST(RecoveryPlanTest, MalformedStatementsAreRejected) {
  const char* bad[] = {
      "stream A ts=internal\nsink OUT in=A\nwal sync=none\n",  // no dir
      "stream A ts=internal\nsink OUT in=A\nwal dir=/x sync=sometimes\n",
      "stream A ts=internal\nsink OUT in=A\nwal dir=/x\nwal dir=/y\n",
      "stream A ts=internal\nsink OUT in=A\ncrash\n",  // no at=
      "stream A ts=internal\nsink OUT in=A\ncrash at=0s\n",
      "stream A ts=internal\nsink OUT in=A\nwal dir=/x\ncheckpoint keep=2\n",
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_FALSE(ParseExperiment(text, /*require_feeds=*/false).ok());
  }
}

TEST(RecoveryMetricsTest, CountersPublishAndRenderAsValidJson) {
  const std::string dir = FreshDir("metrics");
  RecoveryOptions options;
  options.dir = dir;
  options.wal = true;
  options.sync = WalSyncPolicy::kEveryFrame;
  RecoveryManager manager(options);
  ASSERT_TRUE(manager.Open().ok());
  ASSERT_TRUE(manager.AppendFrame(kMillisecond, 1, 0, "frame-a").ok());
  ASSERT_TRUE(manager.AppendFrame(2 * kMillisecond, 1, 0, "frame-b").ok());
  ASSERT_TRUE(manager.AppendFrame(3 * kMillisecond, 1, 2, "frame-c").ok());

  MetricsRegistry registry;
  manager.PublishTo(&registry);
  EXPECT_EQ(registry.GetCounter("recovery.wal_appends")->value(), 3u);
  EXPECT_GT(registry.GetCounter("recovery.wal_synced_bytes")->value(), 0u);
  EXPECT_EQ(registry.GetCounter("recovery.checkpoints_written")->value(), 0u);

  ASSERT_EQ(manager.durable_seqs().count(0), 1u);
  EXPECT_EQ(manager.durable_seqs().at(0), 2u);
  EXPECT_EQ(manager.durable_seqs().at(2), 1u);

  std::ostringstream json;
  registry.PrintJson(json);
  std::string error;
  EXPECT_TRUE(dsms::testing::JsonValidator(json.str()).Validate(&error))
      << error;
}

}  // namespace
}  // namespace dsms
