// Wire-protocol codec tests: round-trips for every Value type and frame
// shape, and a hostile-input battery — truncated, oversized, and garbage
// frames must come back as error Statuses, never as crashes or misparsed
// tuples (a network port is the one place input is assumed malicious).

#include "net/wire_format.h"

#include <cstring>
#include <string>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "common/random.h"
#include "test_seed.h"

namespace dsms {
namespace {

using ::testing::HasSubstr;

// --- raw-byte helpers for hand-crafting malformed frames -------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutI64(std::string* out, int64_t v) {
  uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((u >> (8 * i)) & 0xff));
  }
}

// Length-prefixes `body` as one frame.
std::string Framed(const std::string& body) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(body.size()));
  out += body;
  return out;
}

// Minimal well-formed data frame body: version, type, flags, count, stream.
std::string MinimalBody() {
  std::string body;
  PutU8(&body, kWireVersion);
  PutU8(&body, 0);  // data
  PutU8(&body, 0);  // no flags
  PutU8(&body, 0);  // no values
  PutI32(&body, 7);
  return body;
}

Status DecodeOne(const std::string& bytes, WireFrame* out) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Result<bool> got = decoder.Next(out);
  if (!got.ok()) return got.status();
  EXPECT_TRUE(*got) << "frame expected but decoder wants more bytes";
  return OkStatus();
}

Status DecodeError(const std::string& bytes) {
  WireFrame frame;
  Status status = DecodeOne(bytes, &frame);
  EXPECT_FALSE(status.ok()) << "malformed frame decoded as: stream="
                            << frame.stream_id;
  return status;
}

// --- round trips -----------------------------------------------------------

TEST(WireFormatTest, RoundTripEveryValueType) {
  WireFrame frame;
  frame.type = WireFrame::Type::kData;
  frame.stream_id = 42;
  frame.values.emplace_back(int64_t{-123456789012345});
  frame.values.emplace_back(3.14159);
  frame.values.emplace_back(std::string("hello wire"));
  frame.values.emplace_back(true);
  frame.values.emplace_back(false);
  frame.values.emplace_back(std::string());  // empty string round-trips too

  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());

  WireFrame back;
  ASSERT_TRUE(DecodeOne(bytes, &back).ok());
  EXPECT_EQ(back.type, WireFrame::Type::kData);
  EXPECT_EQ(back.stream_id, 42);
  EXPECT_FALSE(back.timestamp.has_value());
  EXPECT_FALSE(back.arrival_hint.has_value());
  ASSERT_EQ(back.values.size(), frame.values.size());
  for (size_t i = 0; i < frame.values.size(); ++i) {
    EXPECT_EQ(back.values[i], frame.values[i]) << "value " << i;
  }
}

TEST(WireFormatTest, RoundTripTimestampAndHint) {
  WireFrame frame;
  frame.stream_id = 3;
  frame.timestamp = 1729 * kSecond;
  frame.arrival_hint = 1730 * kSecond + 250;
  frame.values.emplace_back(int64_t{1});

  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());

  WireFrame back;
  ASSERT_TRUE(DecodeOne(bytes, &back).ok());
  ASSERT_TRUE(back.timestamp.has_value());
  EXPECT_EQ(*back.timestamp, 1729 * kSecond);
  ASSERT_TRUE(back.arrival_hint.has_value());
  EXPECT_EQ(*back.arrival_hint, 1730 * kSecond + 250);
}

TEST(WireFormatTest, RoundTripNegativeTimestamp) {
  // Timestamps are signed; the codec must not mangle the sign bit.
  WireFrame frame;
  frame.stream_id = 0;
  frame.timestamp = -5 * kSecond;
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
  WireFrame back;
  ASSERT_TRUE(DecodeOne(bytes, &back).ok());
  EXPECT_EQ(*back.timestamp, -5 * kSecond);
}

TEST(WireFormatTest, RoundTripPunctuation) {
  WireFrame frame;
  frame.type = WireFrame::Type::kPunctuation;
  frame.stream_id = 9;
  frame.timestamp = 77 * kMillisecond;

  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());

  WireFrame back;
  ASSERT_TRUE(DecodeOne(bytes, &back).ok());
  EXPECT_EQ(back.type, WireFrame::Type::kPunctuation);
  EXPECT_EQ(back.stream_id, 9);
  ASSERT_TRUE(back.timestamp.has_value());
  EXPECT_EQ(*back.timestamp, 77 * kMillisecond);
  EXPECT_TRUE(back.values.empty());
}

TEST(WireFormatTest, RoundTripManyFramesBackToBack) {
  std::string bytes;
  for (int i = 0; i < 100; ++i) {
    WireFrame frame;
    frame.stream_id = i;
    frame.values.emplace_back(int64_t{i});
    ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
  }
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  for (int i = 0; i < 100; ++i) {
    WireFrame back;
    Result<bool> got = decoder.Next(&back);
    ASSERT_TRUE(got.ok() && *got) << "frame " << i;
    EXPECT_EQ(back.stream_id, i);
  }
  WireFrame extra;
  Result<bool> done = decoder.Next(&extra);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(*done);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_EQ(decoder.frames_decoded(), 100u);
}

TEST(WireFormatTest, ByteAtATimeFeedingDecodesEventually) {
  WireFrame frame;
  frame.stream_id = 5;
  frame.timestamp = 123;
  frame.values.emplace_back(std::string("dripfeed"));
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());

  FrameDecoder decoder;
  WireFrame back;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(&bytes[i], 1);
    Result<bool> got = decoder.Next(&back);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(*got) << "frame completed " << (bytes.size() - 1 - i)
                       << " bytes early";
  }
  decoder.Feed(&bytes[bytes.size() - 1], 1);
  Result<bool> got = decoder.Next(&back);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(back.stream_id, 5);
  ASSERT_EQ(back.values.size(), 1u);
  EXPECT_EQ(back.values[0], Value(std::string("dripfeed")));
}

// --- encode-side rejection -------------------------------------------------

TEST(WireFormatTest, EncodeRejectsPunctuationWithoutTimestamp) {
  WireFrame frame;
  frame.type = WireFrame::Type::kPunctuation;
  std::string bytes;
  EXPECT_FALSE(EncodeFrame(frame, &bytes).ok());
}

TEST(WireFormatTest, EncodeRejectsPunctuationWithPayload) {
  WireFrame frame;
  frame.type = WireFrame::Type::kPunctuation;
  frame.timestamp = 1;
  frame.values.emplace_back(int64_t{1});
  std::string bytes;
  EXPECT_FALSE(EncodeFrame(frame, &bytes).ok());
}

TEST(WireFormatTest, EncodeRejectsTooManyValues) {
  WireFrame frame;
  for (int i = 0; i < 256; ++i) frame.values.emplace_back(int64_t{i});
  std::string bytes;
  EXPECT_FALSE(EncodeFrame(frame, &bytes).ok());
}

TEST(WireFormatTest, EncodeRejectsOversizedBody) {
  WireFrame frame;
  frame.values.emplace_back(std::string(kMaxFrameBytes, 'x'));
  std::string bytes;
  EXPECT_FALSE(EncodeFrame(frame, &bytes).ok());
}

TEST(WireFormatTest, EncodeFailureLeavesOutputUntouched) {
  WireFrame good;
  good.stream_id = 1;
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(good, &bytes).ok());
  const std::string before = bytes;

  WireFrame bad;
  bad.type = WireFrame::Type::kPunctuation;  // no timestamp -> error
  EXPECT_FALSE(EncodeFrame(bad, &bytes).ok());
  EXPECT_EQ(bytes, before);
}

// --- decode-side rejection -------------------------------------------------

TEST(WireFormatTest, RejectsUndersizedBody) {
  std::string body = MinimalBody();
  body.resize(kMinFrameBody - 1);
  Status status = DecodeError(Framed(body));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(WireFormatTest, RejectsOversizedLengthPrefixBeforeBuffering) {
  std::string bytes;
  PutU32(&bytes, static_cast<uint32_t>(kMaxFrameBytes + 1));
  // Only the prefix is ever sent: the decoder must reject it from the four
  // bytes alone rather than waiting for (or allocating) a megabyte body.
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  WireFrame frame;
  Result<bool> got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
}

TEST(WireFormatTest, RejectsUnknownVersion) {
  std::string body = MinimalBody();
  body[0] = static_cast<char>(kWireVersion + 1);
  EXPECT_THAT(DecodeError(Framed(body)).message(), HasSubstr("version"));
}

TEST(WireFormatTest, RejectsUnknownFrameType) {
  std::string body = MinimalBody();
  body[1] = 5;  // one past kResume, the highest defined type
  DecodeError(Framed(body));
}

// --- control frames (resume handshake; docs/recovery.md) -------------------

TEST(WireFormatTest, RoundTripHello) {
  WireFrame frame;
  frame.type = WireFrame::Type::kHello;
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
  WireFrame back;
  ASSERT_TRUE(DecodeOne(bytes, &back).ok());
  EXPECT_EQ(back.type, WireFrame::Type::kHello);
  EXPECT_TRUE(back.values.empty());
  EXPECT_FALSE(back.timestamp.has_value());
}

TEST(WireFormatTest, RoundTripResumeStatePairs) {
  WireFrame frame;
  frame.type = WireFrame::Type::kResumeState;
  frame.values.emplace_back(int64_t{1});    // stream 1 ...
  frame.values.emplace_back(int64_t{42});   // ... 42 durable frames
  frame.values.emplace_back(int64_t{2});
  frame.values.emplace_back(int64_t{7});
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
  WireFrame back;
  ASSERT_TRUE(DecodeOne(bytes, &back).ok());
  EXPECT_EQ(back.type, WireFrame::Type::kResumeState);
  ASSERT_EQ(back.values.size(), 4u);
  EXPECT_EQ(back.values[1].int64_value(), 42);
}

TEST(WireFormatTest, RejectsHelloWithPayload) {
  WireFrame frame;
  frame.type = WireFrame::Type::kHello;
  frame.values.emplace_back(int64_t{1});
  std::string bytes;
  EXPECT_FALSE(EncodeFrame(frame, &bytes).ok());
}

TEST(WireFormatTest, RejectsControlFrameWithTimestamp) {
  WireFrame frame;
  frame.type = WireFrame::Type::kResume;
  frame.timestamp = 5;
  std::string bytes;
  EXPECT_FALSE(EncodeFrame(frame, &bytes).ok());
}

TEST(WireFormatTest, RejectsResumeWithOddValueCount) {
  WireFrame frame;
  frame.type = WireFrame::Type::kResume;
  frame.values.emplace_back(int64_t{1});
  std::string bytes;
  EXPECT_FALSE(EncodeFrame(frame, &bytes).ok());
}

TEST(WireFormatTest, RejectsResumeStateWithNonInt64Values) {
  // Encoder refuses...
  WireFrame frame;
  frame.type = WireFrame::Type::kResumeState;
  frame.values.emplace_back(3.5);
  frame.values.emplace_back(int64_t{1});
  std::string bytes;
  EXPECT_FALSE(EncodeFrame(frame, &bytes).ok());
  // ...and so does the decoder on hand-crafted bytes.
  std::string body = MinimalBody();
  body[1] = 3;  // resume-state
  body[3] = 2;  // two values
  PutU8(&body, 1);  // double tag
  PutI64(&body, 0);
  PutU8(&body, 0);  // int64 tag
  PutI64(&body, 1);
  DecodeError(Framed(body));
}

TEST(WireFormatTest, RejectsUnknownFlagBits) {
  std::string body = MinimalBody();
  body[2] = 4;  // only bits 0 and 1 are defined
  DecodeError(Framed(body));
}

TEST(WireFormatTest, RejectsUnknownValueTag) {
  std::string body = MinimalBody();
  body[3] = 1;    // one value...
  PutU8(&body, 9);  // ...with an undefined type tag
  DecodeError(Framed(body));
}

TEST(WireFormatTest, RejectsTruncatedValuePayload) {
  std::string body = MinimalBody();
  body[3] = 1;
  PutU8(&body, 0);            // int64 tag
  PutU32(&body, 0xdeadbeef);  // only 4 of 8 payload bytes
  DecodeError(Framed(body));
}

TEST(WireFormatTest, RejectsTruncatedStringPayload) {
  std::string body = MinimalBody();
  body[3] = 1;
  PutU8(&body, 2);     // string tag
  PutU32(&body, 100);  // declares 100 bytes, delivers none
  DecodeError(Framed(body));
}

TEST(WireFormatTest, RejectsTrailingBytes) {
  std::string body = MinimalBody();
  PutU8(&body, 0xcc);  // one byte more than the header accounts for
  DecodeError(Framed(body));
}

TEST(WireFormatTest, RejectsPunctuationWithoutTimestampOnTheWire) {
  std::string body;
  PutU8(&body, kWireVersion);
  PutU8(&body, 1);  // punctuation
  PutU8(&body, 0);  // ...but no timestamp flag
  PutU8(&body, 0);
  PutI32(&body, 1);
  DecodeError(Framed(body));
}

TEST(WireFormatTest, RejectsPunctuationWithPayloadOnTheWire) {
  std::string body;
  PutU8(&body, kWireVersion);
  PutU8(&body, 1);  // punctuation
  PutU8(&body, 1);  // has timestamp
  PutU8(&body, 1);  // ...and, illegally, a value
  PutI32(&body, 1);
  PutI64(&body, 50);
  PutU8(&body, 0);
  PutI64(&body, 7);
  DecodeError(Framed(body));
}

TEST(WireFormatTest, SmallerMaxFrameBytesIsEnforced) {
  WireFrame frame;
  frame.stream_id = 1;
  frame.values.emplace_back(std::string(512, 'y'));
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());

  FrameDecoder decoder(/*max_frame_bytes=*/64);
  decoder.Feed(bytes.data(), bytes.size());
  WireFrame out;
  Result<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
}

TEST(WireFormatTest, DecoderIsPoisonedAfterFirstError) {
  std::string bad = MinimalBody();
  bad[0] = 0;  // bad version
  std::string good_bytes;
  WireFrame good;
  good.stream_id = 1;
  ASSERT_TRUE(EncodeFrame(good, &good_bytes).ok());

  FrameDecoder decoder;
  std::string stream = Framed(bad) + good_bytes;
  decoder.Feed(stream.data(), stream.size());
  WireFrame out;
  Result<bool> first = decoder.Next(&out);
  ASSERT_FALSE(first.ok());
  // The well-formed frame behind the poison pill must never surface.
  Result<bool> second = decoder.Next(&out);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), first.status().code());
}

// --- fuzz ------------------------------------------------------------------

TEST(WireFormatTest, SeededGarbageNeverCrashes) {
  const uint64_t seed = test::TestSeedOr(0x317e);
  DSMS_TRACE_SEED(seed);
  Pcg32 rng(seed, 0x9e3779b9);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    // Mostly garbage, sometimes starting from a valid frame prefix so the
    // fuzz reaches the value-parsing paths too.
    std::string bytes;
    if (round % 3 == 0) {
      WireFrame frame;
      frame.stream_id = 1;
      frame.timestamp = round;
      frame.values.emplace_back(std::string("x"));
      ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
      size_t cut = static_cast<size_t>(
          rng.NextInt(0, static_cast<int64_t>(bytes.size())));
      bytes.resize(cut);
    }
    int64_t extra = rng.NextInt(0, 64);
    for (int64_t i = 0; i < extra; ++i) {
      bytes.push_back(static_cast<char>(rng.NextInt(0, 255)));
    }
    decoder.Feed(bytes.data(), bytes.size());
    WireFrame out;
    // Drain until the decoder stalls or errors; any outcome but a crash or
    // an infinite loop is acceptable for garbage.
    for (int i = 0; i < 100; ++i) {
      Result<bool> got = decoder.Next(&out);
      if (!got.ok() || !*got) break;
    }
  }
}

// Mid-stream corruption after an arbitrary run of valid frames — the
// feeder-betrays-you-later shape the chaos harness injects after a
// successful RESUME handshake. Exactly the clean prefix decodes; the first
// corrupt byte poisons the decoder stickily (per-connection isolation is
// the loopback suite's half of this property).
TEST(WireFormatTest, SeededMidStreamCorruptionDecodesExactlyThePrefix) {
  const uint64_t seed = test::TestSeedOr(0x51ab);
  DSMS_TRACE_SEED(seed);
  Pcg32 rng(seed, 0xc0ffee);
  for (int round = 0; round < 50; ++round) {
    const int clean = static_cast<int>(rng.NextInt(1, 8));
    std::string stream;
    for (int i = 0; i < clean; ++i) {
      WireFrame frame;
      frame.stream_id = i;
      frame.timestamp = (i + 1) * 1000;
      frame.values.emplace_back(static_cast<int64_t>(round));
      ASSERT_TRUE(EncodeFrame(frame, &stream).ok());
    }
    // Garbage led by a full 0xff length prefix (~4GiB): the decoder cannot
    // mistake it for a pending frame and must poison on the spot.
    for (int i = 0; i < 4; ++i) stream.push_back(static_cast<char>(0xff));
    int64_t extra = rng.NextInt(0, 64);
    for (int64_t i = 0; i < extra; ++i) {
      stream.push_back(static_cast<char>(rng.NextInt(0, 255)));
    }

    FrameDecoder decoder;
    decoder.Feed(stream.data(), stream.size());
    WireFrame out;
    int decoded = 0;
    Status error = OkStatus();
    for (int i = 0; i < clean + 10; ++i) {
      Result<bool> got = decoder.Next(&out);
      if (!got.ok()) {
        error = got.status();
        break;
      }
      ASSERT_TRUE(*got) << "decoder stalled before the corruption";
      EXPECT_EQ(out.stream_id, decoded);
      ++decoded;
    }
    EXPECT_EQ(decoded, clean) << "round " << round;
    ASSERT_FALSE(error.ok());
    // Sticky: the poison outlives further Feed/Next cycles.
    WireFrame good;
    good.stream_id = 99;
    std::string good_bytes;
    ASSERT_TRUE(EncodeFrame(good, &good_bytes).ok());
    decoder.Feed(good_bytes.data(), good_bytes.size());
    Result<bool> after = decoder.Next(&out);
    ASSERT_FALSE(after.ok());
    EXPECT_EQ(after.status().code(), error.code());
  }
}

TEST(WireFormatTest, RoundTripReject) {
  WireFrame frame;
  frame.type = WireFrame::Type::kReject;
  frame.values.emplace_back(std::string("ingest memory budget exhausted"));

  std::string bytes;
  ASSERT_TRUE(EncodeFrame(frame, &bytes).ok());
  WireFrame back;
  ASSERT_TRUE(DecodeOne(bytes, &back).ok());
  EXPECT_EQ(back.type, WireFrame::Type::kReject);
  ASSERT_EQ(back.values.size(), 1u);
  EXPECT_EQ(back.values[0].string_value(), "ingest memory budget exhausted");
}

TEST(WireFormatTest, EncodeRejectsRejectWithoutReason) {
  WireFrame frame;
  frame.type = WireFrame::Type::kReject;
  std::string bytes;
  Status status = EncodeFrame(frame, &bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_THAT(status.message(), HasSubstr("reason"));
}

TEST(WireFormatTest, RejectsRejectFrameWithNonStringReasonOnTheWire) {
  std::string body;
  PutU8(&body, kWireVersion);
  PutU8(&body, 5);  // reject
  PutU8(&body, 0);  // no flags
  PutU8(&body, 1);  // one value
  PutI32(&body, 0);
  PutU8(&body, 0);  // int64 tag
  PutI64(&body, 42);
  Status status = DecodeError(Framed(body));
  EXPECT_THAT(status.message(), HasSubstr("string"));
}

TEST(WireFormatTest, TypeNames) {
  EXPECT_STREQ(WireFrameTypeToString(WireFrame::Type::kData), "data");
  EXPECT_STREQ(WireFrameTypeToString(WireFrame::Type::kPunctuation),
               "punctuation");
  EXPECT_STREQ(WireFrameTypeToString(WireFrame::Type::kReject), "reject");
}

}  // namespace
}  // namespace dsms
