#include "common/strings.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dsms {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d", 5), "x=5");
  EXPECT_EQ(StrFormat("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  std::string big(500, 'x');
  EXPECT_EQ(StrFormat("%s!", big.c_str()).size(), 501u);
}

TEST(StrSplitTest, BasicSplit) {
  std::vector<std::string> pieces = StrSplit("a,b,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StrSplitTest, KeepsEmptyPieces) {
  EXPECT_EQ(StrSplit(",a,", ',').size(), 3u);
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("stream S1", "stream"));
  EXPECT_FALSE(StartsWith("str", "stream"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(ParseDoubleTest, ValidNumbers) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-0.05", &v));
  EXPECT_DOUBLE_EQ(v, -0.05);
  EXPECT_TRUE(ParseDouble("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 7;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("3.5x", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_DOUBLE_EQ(v, 7);  // untouched
}

TEST(ParseInt64Test, ValidNumbers) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt64("9007199254740993", &v));
  EXPECT_EQ(v, 9007199254740993LL);
}

TEST(ParseInt64Test, RejectsGarbage) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("12abc", &v));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"x", "y"}, " -> "), "x -> y");
}

}  // namespace
}  // namespace dsms
