#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "core/value.h"
#include "operators/filter.h"
#include "operators/map.h"
#include "operators/operator.h"
#include "operators/project.h"
#include "operators/sink.h"
#include "operators/source.h"

namespace dsms {
namespace {

Tuple DataTuple(Timestamp ts, int64_t v) {
  return Tuple::MakeData(ts, {Value(v)});
}

TEST(FilterTest, KeepsMatchingDropsRest) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  Filter filter("f", [](const Tuple& t) { return t.value(0).int64_value() > 5; });
  filter.AddInput(&in);
  filter.AddOutput(&out);
  ManualExecContext ctx;

  in.Push(DataTuple(1, 10));
  in.Push(DataTuple(2, 3));
  StepResult r1 = filter.Step(ctx);
  EXPECT_TRUE(r1.processed_data);
  EXPECT_TRUE(r1.yield);
  EXPECT_TRUE(r1.more);
  StepResult r2 = filter.Step(ctx);
  EXPECT_TRUE(r2.processed_data);
  EXPECT_FALSE(r2.more);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.Front().value(0).int64_value(), 10);
  EXPECT_EQ(filter.stats().data_in, 2u);
  EXPECT_EQ(filter.stats().data_out, 1u);
}

TEST(FilterTest, PunctuationPassesThroughUnchanged) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  Filter filter("f", [](const Tuple&) { return false; });  // drops ALL data
  filter.AddInput(&in);
  filter.AddOutput(&out);
  ManualExecContext ctx;

  in.Push(Tuple::MakePunctuation(42));
  StepResult r = filter.Step(ctx);
  EXPECT_TRUE(r.processed_punctuation);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Front().is_punctuation());
  EXPECT_EQ(out.Front().timestamp(), 42);
}

TEST(FilterTest, EmptyInputStep) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  Filter filter("f", [](const Tuple&) { return true; });
  filter.AddInput(&in);
  filter.AddOutput(&out);
  ManualExecContext ctx;
  StepResult r = filter.Step(ctx);
  EXPECT_FALSE(r.processed_data);
  EXPECT_FALSE(r.more);
  EXPECT_FALSE(r.yield);
}

TEST(FilterTest, YieldStaysTrueWhileOutputBuffered) {
  // Footnote 4 of the paper: tuples may remain from earlier executions.
  StreamBuffer in("in");
  StreamBuffer out("out");
  Filter filter("f", [](const Tuple&) { return true; });
  filter.AddInput(&in);
  filter.AddOutput(&out);
  ManualExecContext ctx;
  in.Push(DataTuple(1, 1));
  filter.Step(ctx);
  // Output not consumed; a further (empty) step still reports yield.
  StepResult r = filter.Step(ctx);
  EXPECT_TRUE(r.yield);
}

TEST(RandomDropFilterTest, SelectivityRespected) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  RandomDropFilter filter("f", 0.95, /*seed=*/7);
  filter.AddInput(&in);
  filter.AddOutput(&out);
  ManualExecContext ctx;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    in.Push(DataTuple(i, i));
    filter.Step(ctx);
  }
  double passed = static_cast<double>(out.size()) / n;
  EXPECT_NEAR(passed, 0.95, 0.01);
}

TEST(RandomDropFilterTest, DeterministicBySeed) {
  auto run = [](uint64_t seed) {
    StreamBuffer in("in");
    StreamBuffer out("out");
    RandomDropFilter filter("f", 0.5, seed);
    filter.AddInput(&in);
    filter.AddOutput(&out);
    ManualExecContext ctx;
    std::vector<int64_t> kept;
    for (int i = 0; i < 100; ++i) {
      in.Push(DataTuple(i, i));
      filter.Step(ctx);
    }
    while (!out.empty()) kept.push_back(out.Pop().value(0).int64_value());
    return kept;
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

TEST(RandomDropFilterTest, ExtremeSelectivities) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  RandomDropFilter none("f", 0.0, 1);
  none.AddInput(&in);
  none.AddOutput(&out);
  ManualExecContext ctx;
  in.Push(DataTuple(1, 1));
  none.Step(ctx);
  EXPECT_TRUE(out.empty());

  StreamBuffer in2("in2");
  StreamBuffer out2("out2");
  RandomDropFilter all("g", 1.0, 1);
  all.AddInput(&in2);
  all.AddOutput(&out2);
  in2.Push(DataTuple(1, 1));
  all.Step(ctx);
  EXPECT_EQ(out2.size(), 1u);
}

TEST(RandomDropFilterTest, NeverDropsPunctuation) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  RandomDropFilter filter("f", 0.0, 9);
  filter.AddInput(&in);
  filter.AddOutput(&out);
  ManualExecContext ctx;
  for (int i = 0; i < 50; ++i) {
    in.Push(Tuple::MakePunctuation(i));
    filter.Step(ctx);
  }
  EXPECT_EQ(out.size(), 50u);
}

TEST(ProjectTest, KeepsRequestedFieldsInOrder) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  Project project("p", {2, 0});
  project.AddInput(&in);
  project.AddOutput(&out);
  ManualExecContext ctx;
  in.Push(Tuple::MakeData(
      5, {Value(int64_t{10}), Value(int64_t{20}), Value(int64_t{30})}));
  project.Step(ctx);
  ASSERT_EQ(out.size(), 1u);
  const Tuple& t = out.Front();
  ASSERT_EQ(t.num_values(), 2);
  EXPECT_EQ(t.value(0).int64_value(), 30);
  EXPECT_EQ(t.value(1).int64_value(), 10);
  EXPECT_EQ(t.timestamp(), 5);
}

TEST(ProjectTest, DuplicateIndicesAllowed) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  Project project("p", {0, 0});
  project.AddInput(&in);
  project.AddOutput(&out);
  ManualExecContext ctx;
  in.Push(DataTuple(1, 7));
  project.Step(ctx);
  EXPECT_EQ(out.Front().num_values(), 2);
}

TEST(ProjectTest, PunctuationUntouched) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  Project project("p", {0});
  project.AddInput(&in);
  project.AddOutput(&out);
  ManualExecContext ctx;
  in.Push(Tuple::MakePunctuation(9));
  project.Step(ctx);
  EXPECT_TRUE(out.Front().is_punctuation());
}

TEST(MapTest, TransformsPayloadPreservesTimestamp) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  MapOp map("m", [](const InlinedValues& values) {
    return InlinedValues{Value(values[0].int64_value() * 2)};
  });
  map.AddInput(&in);
  map.AddOutput(&out);
  ManualExecContext ctx;
  Tuple t = DataTuple(33, 21);
  t.set_arrival_time(30);
  t.set_source_id(2);
  in.Push(std::move(t));
  map.Step(ctx);
  const Tuple& result = out.Front();
  EXPECT_EQ(result.value(0).int64_value(), 42);
  EXPECT_EQ(result.timestamp(), 33);
  EXPECT_EQ(result.arrival_time(), 30);
  EXPECT_EQ(result.source_id(), 2);
}

TEST(CopyTest, FansOutToAllOutputs) {
  StreamBuffer in("in");
  StreamBuffer out1("o1");
  StreamBuffer out2("o2");
  CopyOp copy("c");
  copy.AddInput(&in);
  copy.AddOutput(&out1);
  copy.AddOutput(&out2);
  ManualExecContext ctx;
  in.Push(DataTuple(1, 5));
  copy.Step(ctx);
  ASSERT_EQ(out1.size(), 1u);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out1.Front().value(0).int64_value(), 5);
  EXPECT_EQ(out2.Front().value(0).int64_value(), 5);
}

TEST(SourceTest, InternalStampsWithNow) {
  StreamBuffer out("out");
  Source source("s", 0, TimestampKind::kInternal);
  source.AddOutput(&out);
  source.Ingest({Value(int64_t{1})}, 500);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.Front().timestamp(), 500);
  EXPECT_EQ(out.Front().arrival_time(), 500);
  EXPECT_EQ(out.Front().sequence(), 0u);
  EXPECT_EQ(source.promised_bound(), 500);
}

TEST(SourceTest, LatentCarriesNoTimestamp) {
  StreamBuffer out("out");
  Source source("s", 1, TimestampKind::kLatent);
  source.AddOutput(&out);
  source.Ingest({}, 500);
  EXPECT_FALSE(out.Front().has_timestamp());
  EXPECT_EQ(out.Front().arrival_time(), 500);
}

TEST(SourceTest, ExternalKeepsAppTimestamp) {
  StreamBuffer out("out");
  Source source("s", 0, TimestampKind::kExternal, /*skew_bound=*/100);
  source.AddOutput(&out);
  source.IngestExternal(450, {}, 500);
  EXPECT_EQ(out.Front().timestamp(), 450);
  EXPECT_EQ(out.Front().arrival_time(), 500);
  EXPECT_EQ(out.Front().timestamp_kind(), TimestampKind::kExternal);
}

TEST(SourceTest, ComputeEtsInternalIsNow) {
  StreamBuffer out("out");
  Source source("s", 0, TimestampKind::kInternal);
  source.AddOutput(&out);
  auto ets = source.ComputeEts(1000);
  ASSERT_TRUE(ets.has_value());
  EXPECT_EQ(*ets, 1000);
}

TEST(SourceTest, ComputeEtsInternalSuppressedWhenNotAdvancing) {
  StreamBuffer out("out");
  Source source("s", 0, TimestampKind::kInternal);
  source.AddOutput(&out);
  source.Ingest({}, 1000);
  EXPECT_FALSE(source.ComputeEts(1000).has_value());  // bound already 1000
  EXPECT_TRUE(source.ComputeEts(1001).has_value());
}

TEST(SourceTest, ComputeEtsExternalUsesSkewFormula) {
  // Section 5: ETS = t + τ − δ with t the last app timestamp, τ the time
  // since its arrival, δ the skew bound.
  StreamBuffer out("out");
  Source source("s", 0, TimestampKind::kExternal, /*skew_bound=*/100);
  source.AddOutput(&out);
  EXPECT_FALSE(source.ComputeEts(1000).has_value());  // no tuple yet
  source.IngestExternal(900, {}, 1000);
  auto ets = source.ComputeEts(1500);  // τ = 500
  ASSERT_TRUE(ets.has_value());
  EXPECT_EQ(*ets, 900 + 500 - 100);
}

TEST(SourceTest, EmitEtsPushesPunctuation) {
  StreamBuffer out("out");
  Source source("s", 0, TimestampKind::kInternal);
  source.AddOutput(&out);
  EXPECT_TRUE(source.EmitEts(2000));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Front().is_punctuation());
  EXPECT_EQ(out.Front().timestamp(), 2000);
  EXPECT_EQ(source.ets_emitted(), 1u);
  // Same instant again: no advancing bound, no punctuation.
  EXPECT_FALSE(source.EmitEts(2000));
  EXPECT_EQ(out.size(), 1u);
}

TEST(SourceTest, LatentNeverEmitsEts) {
  StreamBuffer out("out");
  Source source("s", 0, TimestampKind::kLatent);
  source.AddOutput(&out);
  EXPECT_FALSE(source.EmitEts(99));
}

TEST(SourceTest, StalePunctuationClampedToPromisedBound) {
  StreamBuffer out("out");
  Source source("s", 0, TimestampKind::kInternal);
  source.AddOutput(&out);
  source.Ingest({}, 1000);
  source.InjectPunctuation(500);  // stale heartbeat
  out.Pop();                      // data tuple
  EXPECT_EQ(out.Front().timestamp(), 1000);  // clamped, order preserved
}

TEST(SinkTest, RecordsLatencyAndEliminatesPunctuation) {
  StreamBuffer in("in");
  Sink sink("out");
  sink.AddInput(&in);
  ManualExecContext ctx(150);
  Tuple t = DataTuple(100, 1);
  t.set_arrival_time(100);
  in.Push(std::move(t));
  in.Push(Tuple::MakePunctuation(120));
  sink.Step(ctx);
  sink.Step(ctx);
  EXPECT_EQ(sink.data_delivered(), 1u);
  EXPECT_EQ(sink.punctuation_eliminated(), 1u);
  EXPECT_DOUBLE_EQ(sink.latency().mean_us(), 50.0);
}

TEST(SinkTest, CallbackAndCollection) {
  StreamBuffer in("in");
  Sink sink("out");
  sink.AddInput(&in);
  sink.set_collect(true);
  int callbacks = 0;
  sink.set_callback([&callbacks](const Tuple&, Timestamp) { ++callbacks; });
  ManualExecContext ctx(10);
  in.Push(DataTuple(1, 7));
  in.Push(Tuple::MakePunctuation(2));
  sink.Step(ctx);
  sink.Step(ctx);
  EXPECT_EQ(callbacks, 1);
  ASSERT_EQ(sink.collected().size(), 1u);
  EXPECT_EQ(sink.collected()[0].value(0).int64_value(), 7);
}

TEST(OperatorBaseTest, HasWorkAndPendingData) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  Filter filter("f", [](const Tuple&) { return true; });
  filter.AddInput(&in);
  filter.AddOutput(&out);
  EXPECT_FALSE(filter.HasWork());
  EXPECT_FALSE(filter.HasPendingData());
  in.Push(Tuple::MakePunctuation(1));
  EXPECT_TRUE(filter.HasWork());
  EXPECT_FALSE(filter.HasPendingData());  // punctuation is not data
  in.Push(DataTuple(2, 1));
  EXPECT_TRUE(filter.HasPendingData());
}

}  // namespace
}  // namespace dsms
