// Robustness: the text-facing parsers (plan language, experiment spec,
// arrival traces, duration syntax) must reject arbitrary junk and mutated
// inputs with a Status — never a crash or a CHECK failure.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/plan_parser.h"
#include "sim/experiment_spec.h"
#include "sim/trace_loader.h"

namespace dsms {
namespace {

constexpr char kValidExperiment[] = R"(
stream FAST ts=internal schema=v:int64
stream SLOW ts=external skew=50ms schema=v:int64
filter F1 in=FAST selectivity=0.95 seed=7
filter F2 in=SLOW field=0 op=ge value=1
union U in=F1,F2
gaggregate G in=U fn=count key=0 window=1s
sink OUT in=G
feed FAST process=poisson rate=50 seed=1
feed SLOW process=constant rate=0.5
heartbeat SLOW period=100ms
run horizon=10s warmup=1s ets=on-demand executor=dfs
)";

/// Applies a random single-character mutation (replace, delete, insert,
/// truncate) to `text`.
std::string Mutate(const std::string& text, Pcg32* rng) {
  if (text.empty()) return text;
  std::string mutated = text;
  size_t pos = static_cast<size_t>(
      rng->NextInt(0, static_cast<int64_t>(text.size()) - 1));
  static const char kChars[] = "=,: \nabz019#-";
  char c = kChars[rng->NextBelow(sizeof(kChars) - 1)];
  switch (rng->NextInt(0, 3)) {
    case 0:
      mutated[pos] = c;
      break;
    case 1:
      mutated.erase(pos, 1);
      break;
    case 2:
      mutated.insert(pos, 1, c);
      break;
    default:
      mutated.resize(pos);
      break;
  }
  return mutated;
}

class ParserRobustness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustness, MutatedExperimentsNeverCrash) {
  Pcg32 rng(GetParam());
  std::string text = kValidExperiment;
  for (int round = 0; round < 200; ++round) {
    std::string mutated = Mutate(text, &rng);
    // Either a valid parse or a clean error; both are fine. What is not
    // fine is an abort, which would fail the test process.
    auto experiment = ParseExperiment(mutated);
    if (experiment.ok()) {
      // Occasionally still runnable; keep it very short.
      experiment->run.horizon = 100 * kMillisecond;
      experiment->run.warmup = 0;
      auto report = RunExperiment(&*experiment);
      (void)report;
    }
    // Chain mutations 25% of the time to drift further from valid input.
    if (rng.NextBernoulli(0.25)) text = mutated;
    if (text.size() < 20) text = kValidExperiment;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness,
                         ::testing::Values<uint64_t>(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ParserRobustnessTest, RandomGarbageRejected) {
  Pcg32 rng(99);
  for (int i = 0; i < 200; ++i) {
    std::string garbage;
    int length = static_cast<int>(rng.NextInt(0, 300));
    for (int j = 0; j < length; ++j) {
      garbage.push_back(static_cast<char>(rng.NextInt(9, 126)));
    }
    (void)ParsePlan(garbage);
    (void)ParseExperiment(garbage);
    (void)ParseArrivalTrace(garbage);
    Duration d = 0;
    (void)ParseDuration(garbage, &d);
  }
}

TEST(ParserRobustnessTest, ValidBaselineStillParses) {
  auto experiment = ParseExperiment(kValidExperiment);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
}

// Bad stream options must be parse-time Status errors, not DSMS_CHECK
// aborts in the operator they eventually configure — a config file is
// user input, and user input never gets to crash the process.
TEST(ParserRobustnessTest, ZeroGranularityIsAParseError) {
  auto plan = ParsePlan("stream S ts=internal granularity=0\nsink X in=S\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("granularity"), std::string::npos);
}

TEST(ParserRobustnessTest, NegativeGranularityIsAParseError) {
  auto plan =
      ParsePlan("stream S ts=internal granularity=-5ms\nsink X in=S\n");
  ASSERT_FALSE(plan.ok());
}

TEST(ParserRobustnessTest, GranularityOnExternalStreamIsAParseError) {
  auto plan = ParsePlan(
      "stream S ts=external skew=10ms granularity=2ms\nsink X in=S\n");
  ASSERT_FALSE(plan.ok());
}

TEST(ParserRobustnessTest, NegativeSkewIsAParseError) {
  auto plan = ParsePlan("stream S ts=external skew=-10ms\nsink X in=S\n");
  ASSERT_FALSE(plan.ok());
}

TEST(ParserRobustnessTest, ValidGranularityStillParses) {
  auto plan = ParsePlan("stream S ts=internal granularity=2ms\nsink X in=S\n");
  ASSERT_TRUE(plan.ok()) << plan.status();
}

}  // namespace
}  // namespace dsms
