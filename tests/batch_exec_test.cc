// Columnar batch execution (ExecConfig::batch_size) is a pure execution-
// strategy optimization: with the virtual cost model zeroed (so tuple
// stamping cannot observe the coarser clock interleaving), a batched run
// must deliver byte-identical sink output, generate the same ETS
// punctuations, and charge the same per-row step accounting as the scalar
// tuple-at-a-time path — across the whole fault-injection chaos matrix and
// for every batch size. Batches must also never span a punctuation: a
// mid-buffer punctuation force-splits the drain so IWP ordering decisions
// see exactly the scalar sequence.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/clock.h"
#include "common/time.h"
#include "core/column_batch.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "exec/dfs_executor.h"
#include "graph/graph_builder.h"
#include "operators/filter.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "sim/fault_injector.h"
#include "sim/scenario.h"
#include "test_seed.h"

namespace dsms {
namespace {

const size_t kBatchSizes[] = {1, 7, 256};

/// Zero every virtual cost: batch mode charges data_step per row in one
/// clock advance instead of one advance per row, so the *intermediate*
/// clock values differ. At zero cost the clock is a pure function of the
/// event queue and the two paths become bit-for-bit comparable end to end.
CostModel ZeroCosts() {
  CostModel costs;
  costs.data_step = 0;
  costs.punctuation_step = 0;
  costs.empty_step = 0;
  costs.backtrack_hop = 0;
  costs.ets_generation = 0;
  return costs;
}

/// Mirror of chaos_test.cc's ChaosConfig (every defense armed, fault at
/// 30s/30s) with the cost model zeroed.
ScenarioConfig ChaosConfig(FaultKind kind, int executor, uint64_t seed) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.executor = static_cast<ExecutorKind>(executor);
  config.horizon = 90 * kSecond;
  config.warmup = 0;
  config.seed = seed;
  config.costs = ZeroCosts();

  config.fault.kind = kind;
  config.fault.start = 30 * kSecond;
  config.fault.duration = 30 * kSecond;
  config.fault.probability = 0.5;
  const bool punct_fault = kind == FaultKind::kDuplicatePunct ||
                           kind == FaultKind::kRegressingPunct;
  config.fault_target = punct_fault ? 1 : 0;
  if (kind == FaultKind::kSkewViolation) {
    config.ts_kind = TimestampKind::kExternal;
    config.skew_bound = kSecond;
  }

  config.watchdog_horizon = 5 * kSecond;
  config.buffer_capacity = 256;
  config.overload = OverloadPolicy::kShedOldest;
  config.violations = ViolationPolicy::kQuarantine;
  return config;
}

void ExpectBatchEquivalent(const ScenarioResult& scalar,
                           const ScenarioResult& batched,
                           const std::string& label) {
  // Byte-identical sink output, in order.
  EXPECT_EQ(scalar.sink_digest, batched.sink_digest) << label;
  EXPECT_EQ(scalar.tuples_delivered, batched.tuples_delivered) << label;
  EXPECT_EQ(scalar.order_violations, batched.order_violations) << label;
  EXPECT_EQ(scalar.buffer_order_violations, batched.buffer_order_violations)
      << label;

  // Identical punctuation machinery: same ETS births, same eliminations.
  EXPECT_EQ(scalar.ets_generated, batched.ets_generated) << label;
  EXPECT_EQ(scalar.watchdog_ets, batched.watchdog_ets) << label;
  EXPECT_EQ(scalar.punctuation_eliminated, batched.punctuation_eliminated)
      << label;

  // Per-row accounting: every batched row is charged as one data step, so
  // the step-kind totals match the scalar run exactly.
  EXPECT_EQ(scalar.exec.data_steps, batched.exec.data_steps) << label;
  EXPECT_EQ(scalar.exec.punctuation_steps, batched.exec.punctuation_steps)
      << label;

  // Same degradation story under faults.
  EXPECT_EQ(scalar.degraded, batched.degraded) << label;
  EXPECT_EQ(scalar.shed_tuples, batched.shed_tuples) << label;
  EXPECT_EQ(scalar.quarantined, batched.quarantined) << label;
}

class BatchChaosMatrixTest
    : public ::testing::TestWithParam<std::tuple<int /*kind*/,
                                                 int /*executor*/>> {};

TEST_P(BatchChaosMatrixTest, SinkBytesAndEtsMatchScalar) {
  auto [kind_index, executor] = GetParam();
  const FaultKind kind = static_cast<FaultKind>(kind_index);
  const uint64_t seed = test::TestSeedOr(42);
  DSMS_TRACE_SEED(seed);

  ScenarioConfig scalar_config = ChaosConfig(kind, executor, seed);
  ScenarioResult scalar = RunScenario(scalar_config);
  EXPECT_GT(scalar.tuples_delivered, 0u);
  EXPECT_EQ(scalar.exec.batches, 0u);

  for (size_t batch : kBatchSizes) {
    ScenarioConfig config = ChaosConfig(kind, executor, seed);
    config.batch_size = batch;
    ScenarioResult batched = RunScenario(config);
    const std::string label = "kind=" + std::to_string(kind_index) +
                              " exec=" + std::to_string(executor) +
                              " batch=" + std::to_string(batch);
    ExpectBatchEquivalent(scalar, batched, label);
    if (executor != 2) {
      // DFS and round-robin have the batch fast path; the union shape runs
      // every data row through a RandomDropFilter batch kernel.
      EXPECT_GT(batched.exec.batches, 0u) << label;
      EXPECT_GE(batched.exec.batch_rows, batched.exec.batches) << label;
      if (batch == 1) {
        EXPECT_EQ(batched.exec.batch_rows, batched.exec.batches) << label;
      }
    } else {
      // The greedy-memory executor deliberately stays scalar.
      EXPECT_EQ(batched.exec.batches, 0u) << label;
    }
  }
}

std::string ChaosName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kKinds[] = {"None",     "Stall",    "Death",
                                 "Burst",    "Disorder", "Skew",
                                 "DupPunct", "RegressPunct"};
  static const char* kExecutors[] = {"Dfs", "RoundRobin", "Greedy"};
  return std::string(kKinds[std::get<0>(info.param)]) +
         kExecutors[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsAllExecutors, BatchChaosMatrixTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values(0, 1, 2)),
    ChaosName);

// Every query shape (union / join / aggregate) on every executor: shapes
// exercise different kernel mixes — the join falls back entirely, the
// aggregate runs the hoisted window-close kernel.
TEST(BatchShapeEquivalenceTest, AllShapesAllExecutorsByteIdentical) {
  for (int shape = 0; shape < 3; ++shape) {
    for (int executor = 0; executor < 3; ++executor) {
      ScenarioConfig base;
      base.kind = ScenarioKind::kOnDemandEts;
      base.shape = static_cast<QueryShape>(shape);
      base.executor = static_cast<ExecutorKind>(executor);
      base.horizon = 120 * kSecond;
      base.warmup = 10 * kSecond;
      base.costs = ZeroCosts();

      ScenarioResult scalar = RunScenario(base);
      EXPECT_GT(scalar.tuples_delivered, 0u);
      for (size_t batch : kBatchSizes) {
        ScenarioConfig config = base;
        config.batch_size = batch;
        ScenarioResult batched = RunScenario(config);
        ExpectBatchEquivalent(scalar, batched,
                              "shape=" + std::to_string(shape) + " exec=" +
                                  std::to_string(executor) + " batch=" +
                                  std::to_string(batch));
      }
    }
  }
}

// --- Punctuation force-split -------------------------------------------------

/// A punctuation parked mid-buffer must cut the batch short: rows before it
/// ride the batch kernel, the punctuation itself takes the scalar step, and
/// rows after it form a fresh batch. Sink output matches the scalar run
/// tuple for tuple.
TEST(BatchPunctuationSplitTest, MidBufferPunctuationForcesSplit) {
  struct RunOutput {
    std::vector<Tuple> delivered;
    ExecStats stats;
  };
  auto run = [](size_t batch_size) {
    GraphBuilder builder;
    Source* source = builder.AddSource("S", TimestampKind::kInternal, 0);
    Filter* filter =
        builder.AddFilter("F", [](const Tuple& t) {
          return t.value(0).AsDouble() >= 0.0;
        });
    filter->set_required_numeric_field(0);
    filter->set_compare_spec(0, FilterCmp::kGe, 0.0);
    Sink* sink = builder.AddSink("OUT");
    builder.Connect(source, filter);
    builder.Connect(filter, sink);
    auto built = builder.Build();
    DSMS_CHECK_OK(built.status());
    auto graph = std::move(built).value();
    sink->set_collect(true);

    VirtualClock clock;
    ExecConfig config;
    config.costs = ZeroCosts();
    config.batch_size = batch_size;
    DfsExecutor executor(graph.get(), &clock, config);

    // 5 data tuples, a punctuation, 5 more — all buffered before any step,
    // so the batched drain meets the punctuation mid-buffer.
    for (int64_t i = 0; i < 5; ++i) {
      clock.AdvanceTo(i * kMillisecond);
      source->Ingest({Value(i)}, clock.now());
    }
    source->InjectPunctuation(clock.now());
    for (int64_t i = 5; i < 10; ++i) {
      clock.AdvanceTo(i * kMillisecond);
      source->Ingest({Value(i)}, clock.now());
    }
    executor.RunUntilIdle();
    return RunOutput{sink->collected(), executor.stats()};
  };

  RunOutput scalar = run(0);
  RunOutput batched = run(256);

  ASSERT_EQ(scalar.delivered.size(), 10u);
  ASSERT_EQ(batched.delivered.size(), 10u);
  for (size_t i = 0; i < scalar.delivered.size(); ++i) {
    EXPECT_EQ(scalar.delivered[i].timestamp(),
              batched.delivered[i].timestamp());
    ASSERT_EQ(scalar.delivered[i].num_values(),
              batched.delivered[i].num_values());
    EXPECT_EQ(scalar.delivered[i].value(0).int64_value(),
              batched.delivered[i].value(0).int64_value());
  }

  // The filter saw two batches: [0..4] stopped by the punctuation, then
  // [5..9]; the punctuation itself was a scalar step.
  EXPECT_EQ(batched.stats.batch_punct_splits, 1u);
  EXPECT_GE(batched.stats.batches, 2u);
  EXPECT_EQ(batched.stats.batch_rows, 10u);
  EXPECT_EQ(batched.stats.data_steps, scalar.stats.data_steps);
  EXPECT_EQ(batched.stats.punctuation_steps, scalar.stats.punctuation_steps);
  EXPECT_EQ(scalar.stats.batches, 0u);
}

// --- DrainIntoBatch contract -------------------------------------------------

Tuple Data(Timestamp ts) { return Tuple::MakeData(ts, {Value(ts)}); }

TEST(DrainIntoBatchTest, StopsAtPunctuationAndFlagsSplit) {
  StreamBuffer buffer("arc");
  ASSERT_TRUE(buffer.Push(Data(1)));
  ASSERT_TRUE(buffer.Push(Data(2)));
  ASSERT_TRUE(buffer.Push(Tuple::MakePunctuation(3)));
  ASSERT_TRUE(buffer.Push(Data(4)));

  ColumnBatch batch;
  bool split = false;
  EXPECT_EQ(buffer.DrainIntoBatch(&batch, 16, &split), 2u);
  EXPECT_TRUE(split);  // rows were taken, then a punctuation stopped us
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.timestamps()[0], 1);
  EXPECT_EQ(batch.timestamps()[1], 2);
  ASSERT_FALSE(buffer.empty());
  EXPECT_TRUE(buffer.Front().is_punctuation());

  // Punctuation at the front: nothing drained, and that is NOT a split —
  // the scalar path handles it without a batch ever existing.
  batch.Clear();
  EXPECT_EQ(buffer.DrainIntoBatch(&batch, 16, &split), 0u);
  EXPECT_FALSE(split);
  EXPECT_EQ(batch.size(), 0u);
}

TEST(DrainIntoBatchTest, HonorsMaxRows) {
  StreamBuffer buffer("arc");
  for (Timestamp ts = 0; ts < 10; ++ts) ASSERT_TRUE(buffer.Push(Data(ts)));

  ColumnBatch batch;
  bool split = true;
  EXPECT_EQ(buffer.DrainIntoBatch(&batch, 4, &split), 4u);
  EXPECT_FALSE(split);  // stopped by max_rows, not punctuation
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(buffer.size(), 6u);
}

TEST(ColumnBatchTest, NumericColumnExtractionAndCacheInvalidation) {
  ColumnBatch batch;
  batch.Append(Tuple::MakeData(10, {Value(int64_t{7}), Value(2.5)}));
  batch.Append(Tuple::MakeData(20, {Value(int64_t{9}), Value(3.5)}));

  const double* col0 = batch.NumericColumn(0);
  ASSERT_NE(col0, nullptr);
  EXPECT_DOUBLE_EQ(col0[0], 7.0);
  EXPECT_DOUBLE_EQ(col0[1], 9.0);
  const double* col1 = batch.NumericColumn(1);
  ASSERT_NE(col1, nullptr);
  EXPECT_DOUBLE_EQ(col1[1], 3.5);
  // Out-of-bounds and repeated requests behave.
  EXPECT_EQ(batch.NumericColumn(5), nullptr);
  EXPECT_EQ(batch.NumericColumn(0), col0);

  batch.Clear();
  EXPECT_EQ(batch.size(), 0u);
  batch.Append(Tuple::MakeData(30, {Value(int64_t{-1})}));
  const double* fresh = batch.NumericColumn(0);
  ASSERT_NE(fresh, nullptr);
  EXPECT_DOUBLE_EQ(fresh[0], -1.0);  // no stale cache from before Clear()

  // String columns refuse vectorization (the kernel falls back row-wise).
  batch.Clear();
  batch.Append(Tuple::MakeData(40, {Value(std::string("s"))}));
  EXPECT_EQ(batch.NumericColumn(0), nullptr);
}

}  // namespace
}  // namespace dsms
