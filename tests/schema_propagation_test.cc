// Schema propagation and type checking through query graphs: sources
// declare schemas, operators derive output schemas, and
// QueryGraph::Validate rejects out-of-bounds or ill-typed field references.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "graph/graph_builder.h"
#include "graph/plan_parser.h"
#include "operators/filter.h"
#include "operators/grouped_aggregate.h"
#include "operators/multiway_join.h"
#include "operators/project.h"
#include "operators/window_aggregate.h"
#include "operators/window_join.h"

namespace dsms {
namespace {

Schema TradeSchema() {
  return Schema{{"price", ValueType::kDouble},
                {"size", ValueType::kInt64},
                {"sym", ValueType::kString}};
}

TEST(CheckFieldAccessTest, BoundsAndTypes) {
  Schema schema = TradeSchema();
  EXPECT_TRUE(CheckFieldAccess(schema, 0, true, "op").ok());
  EXPECT_TRUE(CheckFieldAccess(schema, 2, false, "op").ok());
  EXPECT_FALSE(CheckFieldAccess(schema, 3, false, "op").ok());
  EXPECT_FALSE(CheckFieldAccess(schema, -1, false, "op").ok());
  Status s = CheckFieldAccess(schema, 2, true, "myop");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("myop"), std::string::npos);
  EXPECT_NE(s.message().find("numeric"), std::string::npos);
}

TEST(SchemaPropagationTest, UntypedSourcesSkipChecking) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  // Projecting field 99 of an untyped stream: no schema, no check.
  Project* p = builder.AddProject("P", {99});
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, p);
  builder.Connect(p, sink);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_FALSE((*graph)->output_schema(p->id()).has_value());
}

TEST(SchemaPropagationTest, SourceSchemaFlowsToSink) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  s->set_schema(TradeSchema());
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, sink);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok()) << graph.status();
  ASSERT_TRUE((*graph)->output_schema(s->id()).has_value());
  EXPECT_EQ(*(*graph)->output_schema(s->id()), TradeSchema());
}

TEST(SchemaPropagationTest, ProjectDerivesSelectedFields) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  s->set_schema(TradeSchema());
  Project* p = builder.AddProject("P", {2, 0});
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, p);
  builder.Connect(p, sink);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok()) << graph.status();
  const std::optional<Schema>& out = (*graph)->output_schema(p->id());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->ToString(), "(sym:string, price:double)");
}

TEST(SchemaPropagationTest, ProjectOutOfBoundsRejected) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  s->set_schema(TradeSchema());
  Project* p = builder.AddProject("P", {3});
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, p);
  builder.Connect(p, sink);
  auto graph = builder.Build();
  ASSERT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("out of bounds"),
            std::string::npos);
}

TEST(SchemaPropagationTest, FilterRequiredNumericFieldChecked) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  s->set_schema(TradeSchema());
  Filter* f = builder.AddFilter("F", [](const Tuple&) { return true; });
  f->set_required_numeric_field(2);  // "sym" is a string
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, f);
  builder.Connect(f, sink);
  auto graph = builder.Build();
  ASSERT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("numeric"), std::string::npos);
}

TEST(SchemaPropagationTest, UnionRequiresMatchingSchemas) {
  GraphBuilder builder;
  Source* a = builder.AddSource("A", TimestampKind::kInternal);
  a->set_schema(TradeSchema());
  Source* b = builder.AddSource("B", TimestampKind::kInternal);
  b->set_schema(Schema{{"x", ValueType::kInt64}});
  Union* u = builder.AddUnion("U");
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(a, u);
  builder.Connect(b, u);
  builder.Connect(u, sink);
  auto graph = builder.Build();
  ASSERT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("does not match"),
            std::string::npos);
}

TEST(SchemaPropagationTest, UnionWithOneTypedInputPropagatesIt) {
  GraphBuilder builder;
  Source* a = builder.AddSource("A", TimestampKind::kInternal);
  a->set_schema(TradeSchema());
  Source* b = builder.AddSource("B", TimestampKind::kInternal);  // untyped
  Union* u = builder.AddUnion("U");
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(a, u);
  builder.Connect(b, u);
  builder.Connect(u, sink);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok()) << graph.status();
  ASSERT_TRUE((*graph)->output_schema(u->id()).has_value());
}

TEST(SchemaPropagationTest, JoinConcatenatesAndChecksEquiFields) {
  GraphBuilder builder;
  Source* l = builder.AddSource("L", TimestampKind::kInternal);
  l->set_schema(Schema{{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
  Source* r = builder.AddSource("R", TimestampKind::kInternal);
  r->set_schema(Schema{{"id", ValueType::kInt64}, {"w", ValueType::kDouble}});
  WindowJoin* j = builder.AddWindowJoin("J", 100, 100,
                                        WindowJoin::EquiJoin(0, 0));
  j->set_equi_fields(0, 0);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(l, j);
  builder.Connect(r, j);
  builder.Connect(j, sink);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok()) << graph.status();
  const std::optional<Schema>& out = (*graph)->output_schema(j->id());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->ToString(),
            "(id:int64, v:double, right.id:int64, w:double)");
}

TEST(SchemaPropagationTest, JoinEquiTypeMismatchRejected) {
  GraphBuilder builder;
  Source* l = builder.AddSource("L", TimestampKind::kInternal);
  l->set_schema(Schema{{"id", ValueType::kInt64}});
  Source* r = builder.AddSource("R", TimestampKind::kInternal);
  r->set_schema(Schema{{"id", ValueType::kString}});
  WindowJoin* j = builder.AddWindowJoin("J", 100, 100,
                                        WindowJoin::EquiJoin(0, 0));
  j->set_equi_fields(0, 0);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(l, j);
  builder.Connect(r, j);
  builder.Connect(j, sink);
  auto graph = builder.Build();
  ASSERT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("equi-join"), std::string::npos);
}

TEST(SchemaPropagationTest, MultiWayJoinKeyCheckedOnEveryInput) {
  GraphBuilder builder;
  Source* a = builder.AddSource("A", TimestampKind::kInternal);
  a->set_schema(Schema{{"k", ValueType::kInt64}});
  Source* b = builder.AddSource("B", TimestampKind::kInternal);
  b->set_schema(Schema{{"k", ValueType::kInt64}});
  Source* c = builder.AddSource("C", TimestampKind::kInternal);
  c->set_schema(Schema{{"k", ValueType::kString}});  // mismatched key type
  MultiWayJoin* j = builder.AddMultiWayJoin("J", {100, 100, 100},
                                            MultiWayJoin::EquiJoin(0));
  j->set_equi_field(0);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(a, j);
  builder.Connect(b, j);
  builder.Connect(c, j);
  builder.Connect(j, sink);
  auto graph = builder.Build();
  ASSERT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("key field"), std::string::npos);
}

TEST(SchemaPropagationTest, AggregateOutputSchemaAndFieldCheck) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  s->set_schema(TradeSchema());
  WindowAggregate* agg =
      builder.AddWindowAggregate("AGG", AggKind::kAvg, /*field=*/0, 100, 100);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, agg);
  builder.Connect(agg, sink);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ((*graph)->output_schema(agg->id())->ToString(),
            "(window_start:int64, avg:double)");
}

TEST(SchemaPropagationTest, AggregateOverStringFieldRejected) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  s->set_schema(TradeSchema());
  WindowAggregate* agg =
      builder.AddWindowAggregate("AGG", AggKind::kSum, /*field=*/2, 100, 100);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, agg);
  builder.Connect(agg, sink);
  EXPECT_FALSE(builder.Build().ok());
  (void)agg;
}

TEST(SchemaPropagationTest, CountAggregateIgnoresField) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  s->set_schema(TradeSchema());
  WindowAggregate* agg = builder.AddWindowAggregate(
      "AGG", AggKind::kCount, /*field=*/99, 100, 100);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, agg);
  builder.Connect(agg, sink);
  EXPECT_TRUE(builder.Build().ok());
  (void)agg;
}

TEST(SchemaPropagationTest, GroupedAggregateKeyTypePreserved) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  s->set_schema(TradeSchema());
  GroupedWindowAggregate* g = builder.AddGroupedWindowAggregate(
      "G", AggKind::kSum, /*key_field=*/2, /*agg_field=*/0, 100, 100);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, g);
  builder.Connect(g, sink);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ((*graph)->output_schema(g->id())->ToString(),
            "(window_start:int64, sym:string, sum:double)");
}

TEST(SchemaPropagationTest, PlanLanguageSchemaDeclaration) {
  auto plan = ParsePlan(R"(
stream TRADES ts=internal schema=price:double,size:int64,sym:string
filter BIG in=TRADES field=1 op=ge value=100
project P in=BIG fields=2,0
sink OUT in=P
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  Operator* p = plan->Find("P");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(plan->graph->output_schema(p->id())->ToString(),
            "(sym:string, price:double)");
}

TEST(SchemaPropagationTest, PlanLanguageTypeErrorsSurface) {
  // Comparison filter over the string column: rejected at plan build.
  auto plan = ParsePlan(R"(
stream TRADES ts=internal schema=price:double,sym:string
filter BAD in=TRADES field=1 op=ge value=100
sink OUT in=BAD
)");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("numeric"), std::string::npos);
}

TEST(SchemaPropagationTest, PlanLanguageBadSchemaSyntax) {
  EXPECT_FALSE(ParsePlan("stream S schema=price\nsink O in=S\n").ok());
  EXPECT_FALSE(
      ParsePlan("stream S schema=price:float32\nsink O in=S\n").ok());
}

TEST(SchemaPropagationTest, MapDeclaredOutputSchema) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  s->set_schema(TradeSchema());
  MapOp* m = builder.AddMap(
      "M", [](const InlinedValues& v) { return v; });
  m->set_output_schema(Schema{{"notional", ValueType::kDouble}});
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, m);
  builder.Connect(m, sink);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ((*graph)->output_schema(m->id())->ToString(),
            "(notional:double)");
}

}  // namespace
}  // namespace dsms
