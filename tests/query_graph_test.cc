#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/check.h"

#include "core/tuple.h"
#include "graph/graph_builder.h"
#include "graph/query_graph.h"
#include "operators/filter.h"
#include "operators/map.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/union_op.h"

namespace dsms {
namespace {

TEST(QueryGraphTest, WiringAndLookups) {
  QueryGraph graph;
  auto* source = graph.Add(
      std::make_unique<Source>("S", 0, TimestampKind::kInternal));
  auto* filter = graph.Add(std::make_unique<Filter>(
      "F", [](const Tuple&) { return true; }));
  auto* sink = graph.Add(std::make_unique<Sink>("OUT"));
  StreamBuffer* arc1 = graph.Connect(source, filter);
  StreamBuffer* arc2 = graph.Connect(filter, sink);

  EXPECT_EQ(graph.num_operators(), 3);
  EXPECT_EQ(graph.num_buffers(), 2);
  EXPECT_EQ(source->id(), 0);
  EXPECT_EQ(arc1->name(), "S->F");
  EXPECT_EQ(graph.producer_of(arc1->id()), source->id());
  EXPECT_EQ(graph.consumer_of(arc2->id()), sink->id());
  EXPECT_EQ(graph.predecessor(filter, 0), source);
  ASSERT_EQ(graph.successors(filter).size(), 1u);
  EXPECT_EQ(graph.successors(filter)[0], sink);
  EXPECT_TRUE(graph.IsLastBeforeSink(filter));
  EXPECT_FALSE(graph.IsLastBeforeSink(source));

  EXPECT_TRUE(graph.Validate().ok());
  EXPECT_TRUE(graph.validated());
  ASSERT_EQ(graph.sources().size(), 1u);
  ASSERT_EQ(graph.sinks().size(), 1u);
}

TEST(QueryGraphTest, ValidateRejectsDanglingFilter) {
  QueryGraph graph;
  auto* source = graph.Add(
      std::make_unique<Source>("S", 0, TimestampKind::kInternal));
  auto* filter = graph.Add(std::make_unique<Filter>(
      "F", [](const Tuple&) { return true; }));
  graph.Connect(source, filter);
  // Filter has no output arc.
  Status status = graph.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("F"), std::string::npos);
}

TEST(QueryGraphTest, ValidateRejectsUnaryUnion) {
  QueryGraph graph;
  auto* source = graph.Add(
      std::make_unique<Source>("S", 0, TimestampKind::kInternal));
  auto* u = graph.Add(std::make_unique<Union>("U"));
  auto* sink = graph.Add(std::make_unique<Sink>("OUT"));
  graph.Connect(source, u);
  graph.Connect(u, sink);
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(QueryGraphTest, ValidateRejectsCycle) {
  QueryGraph graph;
  auto* a = graph.Add(std::make_unique<MapOp>(
      "A", [](const InlinedValues& v) { return v; }));
  auto* b = graph.Add(std::make_unique<MapOp>(
      "B", [](const InlinedValues& v) { return v; }));
  graph.Connect(a, b);
  graph.Connect(b, a);
  Status status = graph.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cycle"), std::string::npos);
}

TEST(QueryGraphTest, ValidateRejectsEmptyGraph) {
  QueryGraph graph;
  EXPECT_EQ(graph.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryGraphTest, ValidateRejectsMixedLineagesIntoUnion) {
  QueryGraph graph;
  auto* s1 = graph.Add(
      std::make_unique<Source>("S1", 0, TimestampKind::kInternal));
  auto* s2 =
      graph.Add(std::make_unique<Source>("S2", 1, TimestampKind::kLatent));
  auto* u = graph.Add(std::make_unique<Union>("U"));
  auto* sink = graph.Add(std::make_unique<Sink>("OUT"));
  graph.Connect(s1, u);
  graph.Connect(s2, u);
  graph.Connect(u, sink);
  Status status = graph.Validate();
  EXPECT_FALSE(status.ok());
}

TEST(QueryGraphTest, ValidateRejectsOrderedUnionOnLatentSources) {
  QueryGraph graph;
  auto* s1 =
      graph.Add(std::make_unique<Source>("S1", 0, TimestampKind::kLatent));
  auto* s2 =
      graph.Add(std::make_unique<Source>("S2", 1, TimestampKind::kLatent));
  auto* u = graph.Add(std::make_unique<Union>("U", /*ordered=*/true));
  auto* sink = graph.Add(std::make_unique<Sink>("OUT"));
  graph.Connect(s1, u);
  graph.Connect(s2, u);
  graph.Connect(u, sink);
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(QueryGraphTest, ValidateAcceptsUnorderedUnionOnLatentSources) {
  QueryGraph graph;
  auto* s1 =
      graph.Add(std::make_unique<Source>("S1", 0, TimestampKind::kLatent));
  auto* s2 =
      graph.Add(std::make_unique<Source>("S2", 1, TimestampKind::kLatent));
  auto* u = graph.Add(std::make_unique<Union>("U", /*ordered=*/false));
  auto* sink = graph.Add(std::make_unique<Sink>("OUT"));
  graph.Connect(s1, u);
  graph.Connect(s2, u);
  graph.Connect(u, sink);
  EXPECT_TRUE(graph.Validate().ok());
}

TEST(QueryGraphTest, ValidateRejectsUnorderedUnionOnTimestampedSources) {
  QueryGraph graph;
  auto* s1 = graph.Add(
      std::make_unique<Source>("S1", 0, TimestampKind::kInternal));
  auto* s2 = graph.Add(
      std::make_unique<Source>("S2", 1, TimestampKind::kInternal));
  auto* u = graph.Add(std::make_unique<Union>("U", /*ordered=*/false));
  auto* sink = graph.Add(std::make_unique<Sink>("OUT"));
  graph.Connect(s1, u);
  graph.Connect(s2, u);
  graph.Connect(u, sink);
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(QueryGraphTest, ComponentsFound) {
  QueryGraph graph;
  auto* s1 = graph.Add(
      std::make_unique<Source>("S1", 0, TimestampKind::kInternal));
  auto* k1 = graph.Add(std::make_unique<Sink>("O1"));
  graph.Connect(s1, k1);
  auto* s2 = graph.Add(
      std::make_unique<Source>("S2", 1, TimestampKind::kInternal));
  auto* k2 = graph.Add(std::make_unique<Sink>("O2"));
  graph.Connect(s2, k2);
  auto components = graph.Components();
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].size(), 2u);
  EXPECT_EQ(components[1].size(), 2u);
}

TEST(QueryGraphTest, TotalBufferedAndDataQueries) {
  QueryGraph graph;
  auto* source = graph.Add(
      std::make_unique<Source>("S", 0, TimestampKind::kInternal));
  auto* sink = graph.Add(std::make_unique<Sink>("OUT"));
  graph.Connect(source, sink);
  DSMS_CHECK_OK(graph.Validate());
  EXPECT_EQ(graph.TotalBufferedTuples(), 0u);
  EXPECT_FALSE(graph.AnyDataBuffered());
  source->Ingest({}, 10);
  source->InjectPunctuation(20);
  EXPECT_EQ(graph.TotalBufferedTuples(), 2u);
  EXPECT_TRUE(graph.AnyDataBuffered());
}

TEST(QueryGraphTest, ToStringListsArcs) {
  QueryGraph graph;
  auto* source = graph.Add(
      std::make_unique<Source>("S", 0, TimestampKind::kInternal));
  auto* sink = graph.Add(std::make_unique<Sink>("OUT"));
  graph.Connect(source, sink);
  std::string dump = graph.ToString();
  EXPECT_NE(dump.find("S -> OUT"), std::string::npos);
}

TEST(GraphBuilderTest, BuildsPaperGraph) {
  GraphBuilder builder;
  Source* s1 = builder.AddSource("S1", TimestampKind::kInternal);
  Source* s2 = builder.AddSource("S2", TimestampKind::kInternal);
  auto* f1 = builder.AddRandomDropFilter("F1", 0.95, 1);
  auto* f2 = builder.AddRandomDropFilter("F2", 0.95, 2);
  Union* u = builder.AddUnion("U");
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s1, f1);
  builder.Connect(s2, f2);
  builder.Connect(f1, u);
  builder.Connect(f2, u);
  builder.Connect(u, sink);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ((*graph)->num_operators(), 6);
  EXPECT_EQ(s1->stream_id(), 0);
  EXPECT_EQ(s2->stream_id(), 1);
}

TEST(GraphBuilderTest, BuildReturnsValidationError) {
  GraphBuilder builder;
  builder.AddSource("S1", TimestampKind::kInternal);
  auto graph = builder.Build();
  EXPECT_FALSE(graph.ok());  // source with no output
}

TEST(GraphBuilderTest, AllOperatorKindsConstructible) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  auto* copy = builder.AddCopy("C");
  auto* f = builder.AddFilter("F", [](const Tuple&) { return true; });
  auto* m = builder.AddMap("M", [](const InlinedValues& v) { return v; });
  auto* p = builder.AddProject("P", {0});
  auto* r = builder.AddReorder("R", 100);
  auto* agg = builder.AddWindowAggregate("A", AggKind::kSum, 0, 100, 100);
  Sink* sink1 = builder.AddSink("O1");
  Sink* sink2 = builder.AddSink("O2");
  builder.Connect(s, copy);
  builder.Connect(copy, f);
  builder.Connect(copy, m);
  builder.Connect(f, p);
  builder.Connect(p, r);
  builder.Connect(r, agg);
  builder.Connect(agg, sink1);
  builder.Connect(m, sink2);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok()) << graph.status();
}

}  // namespace
}  // namespace dsms
