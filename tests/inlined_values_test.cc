#include "core/inlined_values.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/value.h"

namespace dsms {
namespace {

TEST(InlinedValuesTest, DefaultIsEmptyInline) {
  InlinedValues v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.capacity(), InlinedValues::kInlineCapacity);
}

TEST(InlinedValuesTest, StaysInlineUpToCapacity) {
  InlinedValues v;
  for (size_t i = 0; i < InlinedValues::kInlineCapacity; ++i) {
    v.push_back(Value(static_cast<int64_t>(i)));
    EXPECT_TRUE(v.is_inline()) << i;
  }
  EXPECT_EQ(v.size(), InlinedValues::kInlineCapacity);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i].int64_value(), static_cast<int64_t>(i));
  }
}

TEST(InlinedValuesTest, SpillsToHeapPastCapacityAndKeepsContents) {
  InlinedValues v;
  const size_t n = InlinedValues::kInlineCapacity + 3;
  for (size_t i = 0; i < n; ++i) v.push_back(Value(static_cast<int64_t>(i)));
  EXPECT_FALSE(v.is_inline());
  EXPECT_GE(v.capacity(), n);
  ASSERT_EQ(v.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(v[i].int64_value(), static_cast<int64_t>(i));
  }
}

TEST(InlinedValuesTest, ExactBoundaryPushSpills) {
  InlinedValues v;
  for (size_t i = 0; i < InlinedValues::kInlineCapacity; ++i) {
    v.push_back(Value(int64_t{7}));
  }
  EXPECT_TRUE(v.is_inline());
  v.push_back(Value(int64_t{8}));  // capacity+1st element triggers the spill
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), InlinedValues::kInlineCapacity + 1);
  EXPECT_EQ(v.back().int64_value(), 8);
}

TEST(InlinedValuesTest, CopyOnGrowPreservesStrings) {
  InlinedValues v;
  for (int i = 0; i < 10; ++i) {
    v.push_back(Value(std::string("str") + std::to_string(i)));
  }
  ASSERT_EQ(v.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)].string_value(),
              "str" + std::to_string(i));
  }
}

TEST(InlinedValuesTest, MoveOfInlineCopiesElementsAndEmptiesSource) {
  InlinedValues a{Value(int64_t{1}), Value("x"), Value(2.5)};
  InlinedValues b(std::move(a));
  EXPECT_TRUE(b.is_inline());
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].int64_value(), 1);
  EXPECT_EQ(b[1].string_value(), "x");
  EXPECT_EQ(b[2].double_value(), 2.5);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd state
  EXPECT_TRUE(a.is_inline());
}

TEST(InlinedValuesTest, MoveOfHeapStealsPointer) {
  InlinedValues a;
  for (int i = 0; i < 8; ++i) a.push_back(Value(static_cast<int64_t>(i)));
  ASSERT_FALSE(a.is_inline());
  const Value* heap_data = a.begin();
  InlinedValues b(std::move(a));
  EXPECT_EQ(b.begin(), heap_data);  // no element copies on heap move
  EXPECT_EQ(b.size(), 8u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd state
  EXPECT_TRUE(a.is_inline());
  // The source is reusable after the move.
  a.push_back(Value(int64_t{42}));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].int64_value(), 42);
}

TEST(InlinedValuesTest, MoveAssignReleasesExistingContents) {
  InlinedValues a;
  for (int i = 0; i < 8; ++i) a.push_back(Value("heap"));
  InlinedValues b{Value(int64_t{5})};
  a = std::move(b);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].int64_value(), 5);
  EXPECT_TRUE(a.is_inline());
}

TEST(InlinedValuesTest, CopyIsDeep) {
  InlinedValues a{Value("original")};
  InlinedValues b(a);
  b[0] = Value("changed");
  EXPECT_EQ(a[0].string_value(), "original");
  EXPECT_EQ(b[0].string_value(), "changed");
}

TEST(InlinedValuesTest, CopyAssignHeapToInline) {
  InlinedValues big;
  for (int i = 0; i < 20; ++i) big.push_back(Value(static_cast<int64_t>(i)));
  InlinedValues small{Value(int64_t{-1})};
  small = big;
  ASSERT_EQ(small.size(), 20u);
  EXPECT_EQ(small[19].int64_value(), 19);
  EXPECT_EQ(big.size(), 20u);
}

TEST(InlinedValuesTest, ConvertsFromVectorImplicitly) {
  std::vector<Value> vec = {Value(int64_t{1}), Value(int64_t{2})};
  InlinedValues v = vec;  // implicit conversion used by payload callbacks
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1].int64_value(), 2);
  EXPECT_EQ(v.ToVector().size(), 2u);
}

TEST(InlinedValuesTest, EqualityComparesElements) {
  InlinedValues a{Value(int64_t{1}), Value("x")};
  InlinedValues b{Value(int64_t{1}), Value("x")};
  InlinedValues c{Value(int64_t{1}), Value("y")};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, InlinedValues{});
}

TEST(InlinedValuesTest, ClearKeepsCapacity) {
  InlinedValues v;
  for (int i = 0; i < 12; ++i) v.push_back(Value(static_cast<int64_t>(i)));
  size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
  v.push_back(Value(int64_t{1}));
  EXPECT_EQ(v.size(), 1u);
}

TEST(InlinedValuesTest, IterationAndAppend) {
  InlinedValues a{Value(int64_t{1}), Value(int64_t{2})};
  InlinedValues b{Value(int64_t{3})};
  a.append(b.begin(), b.end());
  int64_t sum = 0;
  for (const Value& v : a) sum += v.int64_value();
  EXPECT_EQ(sum, 6);
  EXPECT_EQ(a.front().int64_value(), 1);
  EXPECT_EQ(a.back().int64_value(), 3);
}

}  // namespace
}  // namespace dsms
