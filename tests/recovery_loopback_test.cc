// End-to-end crash-recovery tests over a real loopback socket: a
// recovery-enabled IngestServer is killed mid-run (the in-process analogue
// of SIGKILL — the engine stack is torn down with no flush, no final
// checkpoint), restarted from its WAL + checkpoint directory, and fed by a
// resuming client. The headline assertion is exactly-once output: the
// recovered durable sink file is byte-identical to an uninterrupted run's.

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/clock.h"
#include "exec/dfs_executor.h"
#include "exec/sharded_executor.h"
#include "frontier/frontier_tracker.h"
#include "graph/query_graph.h"
#include "net/feed_client.h"
#include "net/feed_schedule.h"
#include "net/ingest_server.h"
#include "net/wire_format.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "recovery/recovery_manager.h"
#include "sim/experiment_spec.h"
#include "storage/block_file.h"
#include "storage/state_store.h"

namespace dsms {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/dsms_recovery_loopback_" + tag;
  std::string cleanup = "rm -rf '" + dir + "'";
  DSMS_CHECK(std::system(cleanup.c_str()) == 0);
  return dir;
}

// The streamets_serve engine stack with recovery attached, assembled in the
// exact phase order the binary uses (restore before the executor ctor, net
// state before Start, WAL replay between Start and Run).
struct RecoveryHarness {
  RecoveryHarness(const std::string& text, const std::string& dir,
                  Timestamp crash_at = 0) {
    Result<Experiment> parsed =
        ParseExperiment(text, /*require_feeds=*/false);
    DSMS_CHECK(parsed.ok());
    experiment = std::make_unique<Experiment>(std::move(*parsed));
    graph = experiment->plan.graph.get();

    RecoveryOptions ropts;
    ropts.dir = dir;
    ropts.wal = true;
    ropts.sync = WalSyncPolicy::kEveryFrame;
    ropts.checkpoint = true;
    ropts.checkpoint_horizon = 250 * kMillisecond;
    recovery = std::make_unique<RecoveryManager>(ropts);
    DSMS_CHECK(recovery->Open().ok());
    // The state store must exist BEFORE RestoreGraph: the restored
    // checkpoint manifest and the operators' spilled-block descriptors
    // claim their block files against it (same order as streamets_serve).
    if (experiment->storage.enabled) {
      StorageConfig storage_config;
      storage_config.mem_budget = experiment->storage.mem_budget;
      storage_config.spill_dir = experiment->storage.spill_dir;
      storage_config.granularity = experiment->storage.granularity;
      storage_config.overload = experiment->run.overload;
      DSMS_CHECK(graph->ConfigureStateStore(storage_config).ok());
    }
    recovery->RestoreGraph(graph, &clock);

    ExecConfig config;
    config.ets.mode = experiment->run.ets;
    config.ets.min_interval = experiment->run.ets_min_interval;
    // Same aliasing as RunExperiment: `lease=` is the current spelling,
    // `watchdog=` the deprecated one; either lands on the frontier lease.
    if (experiment->run.lease > 0) {
      config.frontier.lease.duration = experiment->run.lease;
    } else {
      config.watchdog.silence_horizon = experiment->run.watchdog;
    }
    config.batch_size = experiment->run.batch;
    // Same policy as streamets_serve: `run shards=N` shards the engine, but
    // a recovery-enabled server always runs the deterministic discipline —
    // checkpoint blobs encode a deterministic schedule position.
    config.shards = experiment->run.shards;
    config.shard_mode = ShardMode::kDeterministic;
    if (config.shards > 1) {
      executor = std::make_unique<ShardedExecutor>(graph, &clock, config);
    } else {
      executor = std::make_unique<DfsExecutor>(graph, &clock, config);
    }
    recovery->RestoreExecutor(executor.get());
    DSMS_CHECK(recovery->AttachSinks(graph).ok());

    IngestServerOptions options;
    options.clock_mode = IngestClock::Mode::kFrameDriven;
    options.horizon = experiment->run.horizon;
    options.wall_limit = 60 * kSecond;  // hang guard
    options.crash_at = crash_at;
    server = std::make_unique<IngestServer>(graph, executor.get(), &clock,
                                            options);
    server->set_violation_policy(experiment->run.violations);
    server->AttachRecovery(recovery.get());
    if (!recovery->recovered_net_blob().empty()) {
      DSMS_CHECK(server->RestoreNetState(recovery->recovered_net_blob()).ok());
    }
  }

  void Serve() {
    ASSERT_TRUE(server->Start().ok());
    if (recovery->recovered()) {
      ASSERT_TRUE(server->ReplayRecoveredWal().ok());
    }
    thread = std::thread([this] { run_status = server->Run(); });
  }

  Status Join() {
    if (!thread.joinable()) return InternalError("server never started");
    thread.join();
    return run_status;
  }

  std::unique_ptr<Experiment> experiment;
  QueryGraph* graph = nullptr;
  VirtualClock clock;
  std::unique_ptr<RecoveryManager> recovery;
  std::unique_ptr<Executor> executor;
  std::unique_ptr<IngestServer> server;
  std::thread thread;
  Status run_status;
};

// Mixed internal/external plan with a heartbeat and a lossy filter: enough
// structure that operator state, punctuation frontiers, and RNG positions
// all have to survive the crash for the outputs to line up.
constexpr char kPlan[] = R"(
stream A ts=internal
stream B ts=external skew=40ms
filter F in=A selectivity=0.8 seed=5
union U in=F,B
sink OUT in=U
feed A process=poisson rate=50 seed=21
feed B process=poisson rate=30 seed=22
heartbeat B period=250ms
run horizon=2s ets=on-demand
)";

std::vector<ScheduledFrame> BuildSchedule(const std::string& text) {
  Result<Experiment> experiment = ParseExperiment(text);
  DSMS_CHECK(experiment.ok());
  Result<std::vector<ScheduledFrame>> schedule =
      BuildFeedSchedule(*experiment, experiment->run.horizon);
  DSMS_CHECK(schedule.ok());
  return *std::move(schedule);
}

TEST(RecoveryLoopbackTest, KillMidRunRecoverResumeOutputIsByteIdentical) {
  const std::vector<ScheduledFrame> schedule = BuildSchedule(kPlan);
  ASSERT_GT(schedule.size(), 0u);

  // Reference: the same plan served to completion with no interruption.
  const std::string ref_dir = FreshDir("reference");
  {
    RecoveryHarness harness(kPlan, ref_dir);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    EXPECT_EQ(*sent, schedule.size());
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
  }
  const std::string reference = ReadFile(ref_dir + "/sink-OUT.out");
  ASSERT_FALSE(reference.empty());

  // Crash run: identical input, but the server aborts at t=1s — mid-stream,
  // with frames still undelivered. Tearing the stack down without any flush
  // is the in-process stand-in for SIGKILL.
  const std::string dir = FreshDir("crash");
  uint64_t durable_at_crash = 0;
  {
    RecoveryHarness harness(kPlan, dir, /*crash_at=*/1 * kSecond);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    // The blast fits in the socket buffer, so Send returns before the
    // crash; the server dies while draining it.
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    client.Close();
    Status run = harness.Join();
    ASSERT_EQ(run.code(), StatusCode::kAborted) << run.ToString();
    for (const auto& [stream, seq] : harness.recovery->durable_seqs()) {
      durable_at_crash += seq;
    }
    // The crash landed mid-stream: some frames are durable, some are not.
    ASSERT_GT(durable_at_crash, 0u);
    ASSERT_LT(durable_at_crash, schedule.size());
  }

  // Recovery run: load the checkpoint, replay the WAL tail, and let a
  // resuming client re-send everything the server does not hold durably.
  {
    RecoveryHarness harness(kPlan, dir);
    ASSERT_TRUE(harness.recovery->recovered());
    // Read the restored clock before Serve(): once the run thread exists,
    // the executor advances the clock concurrently.
    EXPECT_GT(harness.clock.now(), 0);
    harness.Serve();

    FeedClientOptions copts;
    copts.port = harness.server->port();
    copts.resume = true;
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Handshake().ok());
    uint64_t acked = 0;
    for (const auto& [stream, seq] : client.acked()) acked += seq;
    EXPECT_EQ(acked, durable_at_crash);

    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    // Exactly-once on the wire: the client re-sends only the frames the
    // server lost.
    EXPECT_EQ(*sent, schedule.size() - durable_at_crash);
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
    EXPECT_EQ(harness.server->resume_rejects(), 0u);
  }

  // Exactly-once at the output: crash + recover + resume produced the same
  // bytes as the uninterrupted run.
  EXPECT_EQ(ReadFile(dir + "/sink-OUT.out"), reference);
}

// The same plan with columnar batch execution enabled. Batch size 7 is
// deliberately odd: drains end mid-burst and at punctuation splits, so the
// crash lands between batches whose boundaries don't line up with anything.
constexpr char kBatchPlan[] = R"(
stream A ts=internal
stream B ts=external skew=40ms
filter F in=A selectivity=0.8 seed=5
union U in=F,B
sink OUT in=U
feed A process=poisson rate=50 seed=21
feed B process=poisson rate=30 seed=22
heartbeat B period=250ms
batch size=7
run horizon=2s ets=on-demand
)";

// The batch-mode variant of the kill-and-recover contract. A ColumnBatch
// lives strictly inside one executor step — drained, processed, cleared
// before the engine can reach the idle points where checkpoints are cut —
// so there is never an in-flight batch to persist, and recovery with
// batching on must be byte-identical exactly like the scalar path. The
// reference run is batched too (batch vs scalar output equivalence is
// tests/batch_exec_test.cc's contract, at zero virtual cost).
TEST(RecoveryLoopbackTest, KillMidRunWithBatchingRecoversByteIdentical) {
  const std::vector<ScheduledFrame> schedule = BuildSchedule(kBatchPlan);
  ASSERT_GT(schedule.size(), 0u);

  // Reference: the batched plan served to completion with no interruption.
  const std::string ref_dir = FreshDir("batch_reference");
  {
    RecoveryHarness harness(kBatchPlan, ref_dir);
    ASSERT_EQ(harness.experiment->run.batch, 7u);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    EXPECT_EQ(*sent, schedule.size());
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
    // The run must actually have exercised the batch path, or the test
    // degenerates into the scalar one.
    EXPECT_GT(harness.executor->stats().batches, 0u);
  }
  const std::string reference = ReadFile(ref_dir + "/sink-OUT.out");
  ASSERT_FALSE(reference.empty());

  // Crash run: aborts at t=1s, mid-stream and between batch drains.
  const std::string dir = FreshDir("batch_crash");
  uint64_t durable_at_crash = 0;
  {
    RecoveryHarness harness(kBatchPlan, dir, /*crash_at=*/1 * kSecond);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    client.Close();
    Status run = harness.Join();
    ASSERT_EQ(run.code(), StatusCode::kAborted) << run.ToString();
    for (const auto& [stream, seq] : harness.recovery->durable_seqs()) {
      durable_at_crash += seq;
    }
    ASSERT_GT(durable_at_crash, 0u);
    ASSERT_LT(durable_at_crash, schedule.size());
  }

  // Recovery run: checkpoint + WAL tail + resuming client, batching still
  // on. The restored batch counters keep accumulating.
  {
    RecoveryHarness harness(kBatchPlan, dir);
    ASSERT_TRUE(harness.recovery->recovered());
    harness.Serve();

    FeedClientOptions copts;
    copts.port = harness.server->port();
    copts.resume = true;
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Handshake().ok());
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    EXPECT_EQ(*sent, schedule.size() - durable_at_crash);
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
    EXPECT_EQ(harness.server->resume_rejects(), 0u);
    EXPECT_GT(harness.executor->stats().batches, 0u);
  }

  // Crash + recover + resume with batching produced the same bytes as the
  // uninterrupted batched run.
  EXPECT_EQ(ReadFile(dir + "/sink-OUT.out"), reference);
}

// The sharded plan: identical to kPlan except the engine runs on 4 worker
// shards (deterministic mode — forced by the harness exactly as
// streamets_serve forces it). S1's chain and S2's chain land on shards by
// stream-id hash; the union's second input crosses a shard boundary when
// they differ.
constexpr char kShardedPlan[] = R"(
stream A ts=internal
stream B ts=external skew=40ms
filter F in=A selectivity=0.8 seed=5
union U in=F,B
sink OUT in=U
feed A process=poisson rate=50 seed=21
feed B process=poisson rate=30 seed=22
heartbeat B period=250ms
run horizon=2s ets=on-demand shards=4
)";

/// Kill-9 + recover at shards=4: the per-shard executor blobs (cursor,
/// epoch/hop counters, per-shard step counts) ride the checkpoint, the WAL
/// tail replays through the sharded engine, and the recovered output is
/// byte-identical — both to the uninterrupted sharded run and to the
/// single-shard runs of the scalar test above (deterministic sharding does
/// not change one output byte).
TEST(RecoveryLoopbackTest, KillMidRunAtFourShardsRecoversByteIdentical) {
  const std::vector<ScheduledFrame> schedule = BuildSchedule(kShardedPlan);
  ASSERT_GT(schedule.size(), 0u);

  // Reference: the sharded plan served to completion with no interruption.
  const std::string ref_dir = FreshDir("sharded_reference");
  {
    RecoveryHarness harness(kShardedPlan, ref_dir);
    ASSERT_EQ(harness.experiment->run.shards, 4);
    ASSERT_NE(dynamic_cast<ShardedExecutor*>(harness.executor.get()),
              nullptr);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    EXPECT_EQ(*sent, schedule.size());
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
  }
  const std::string reference = ReadFile(ref_dir + "/sink-OUT.out");
  ASSERT_FALSE(reference.empty());

  // Crash run: the sharded server aborts at t=1s mid-stream.
  const std::string dir = FreshDir("sharded_crash");
  uint64_t durable_at_crash = 0;
  {
    RecoveryHarness harness(kShardedPlan, dir, /*crash_at=*/1 * kSecond);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    client.Close();
    Status run = harness.Join();
    ASSERT_EQ(run.code(), StatusCode::kAborted) << run.ToString();
    for (const auto& [stream, seq] : harness.recovery->durable_seqs()) {
      durable_at_crash += seq;
    }
    ASSERT_GT(durable_at_crash, 0u);
    ASSERT_LT(durable_at_crash, schedule.size());
  }

  // Recovery run: the sharded executor restores its per-shard blobs from
  // the checkpoint (same shard count, same mode — the Import contract),
  // replays the WAL tail, and the resuming client sends only what was lost.
  {
    RecoveryHarness harness(kShardedPlan, dir);
    ASSERT_TRUE(harness.recovery->recovered());
    harness.Serve();

    FeedClientOptions copts;
    copts.port = harness.server->port();
    copts.resume = true;
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Handshake().ok());
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    EXPECT_EQ(*sent, schedule.size() - durable_at_crash);
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
    EXPECT_EQ(harness.server->resume_rejects(), 0u);
  }

  EXPECT_EQ(ReadFile(dir + "/sink-OUT.out"), reference);

  // Deterministic sharding is schedule-identical to scalar DFS: the sharded
  // reference bytes equal what the same plan produces at shards=1.
  const std::string scalar_dir = FreshDir("sharded_scalar_oracle");
  {
    RecoveryHarness harness(kPlan, scalar_dir);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Send(BuildSchedule(kPlan)).ok());
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
  }
  EXPECT_EQ(reference, ReadFile(scalar_dir + "/sink-OUT.out"));
}

// The quarantine plan: same shape, but with the frontier lease armed and
// arc violations quarantined. The schedule is mutated below so stream B
// misbehaves hard enough to walk into frontier quarantine before the crash.
constexpr char kQuarantinePlan[] = R"(
stream A ts=internal
stream B ts=external skew=40ms
filter F in=A selectivity=0.8 seed=5
union U in=F,B
sink OUT in=U
feed A process=poisson rate=50 seed=21
feed B process=poisson rate=30 seed=22
heartbeat B period=250ms
run horizon=2s ets=on-demand lease=1s violations=quarantine
)";

int32_t StreamId(const std::string& text, const std::string& name) {
  Result<Experiment> experiment =
      ParseExperiment(text, /*require_feeds=*/false);
  DSMS_CHECK(experiment.ok());
  for (Source* source : experiment->plan.graph->sources()) {
    if (source->name() == name) return source->stream_id();
  }
  return -1;
}

/// A crash while a source sits in frontier quarantine must come back up
/// still quarantined: the tracker's lifecycle state rides the executor blob
/// in the checkpoint, so a restart can neither amnesty a liar nor re-punish
/// it from scratch — and the recovered output is still byte-identical.
TEST(RecoveryLoopbackTest, KillWhileQuarantinedRestoresQuarantineState) {
  std::vector<ScheduledFrame> schedule = BuildSchedule(kQuarantinePlan);
  ASSERT_GT(schedule.size(), 0u);

  // Misbehave on purpose: regress a run of stream B's data frames by 200ms.
  // Each one lands below both the stream's promise and its skew contract —
  // a frontier violation — and four strikes mean quarantine well before the
  // 1s crash point. Both the reference and the crash run see this exact
  // stream, so byte-identity still has meaning.
  const int32_t b_id = StreamId(kQuarantinePlan, "B");
  ASSERT_GE(b_id, 0);
  size_t regressed = 0;
  for (ScheduledFrame& sf : schedule) {
    if (sf.frame.stream_id != b_id) continue;
    if (sf.frame.type != WireFrame::Type::kData) continue;
    if (sf.time < 300 * kMillisecond || sf.time >= 700 * kMillisecond)
      continue;
    ASSERT_TRUE(sf.frame.timestamp.has_value());
    *sf.frame.timestamp -= 200 * kMillisecond;
    ++regressed;
  }
  ASSERT_GE(regressed, 4u);  // enough strikes to quarantine

  // Reference: the misbehaving schedule served to completion uninterrupted.
  const std::string ref_dir = FreshDir("quarantine_reference");
  {
    RecoveryHarness harness(kQuarantinePlan, ref_dir);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Send(schedule).ok());
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
    // Sanity: the mutation actually walked B into quarantine (the 2s
    // horizon is far inside readmit_after, so it never heals mid-run).
    const FrontierTracker* frontier = harness.executor->frontier();
    EXPECT_GE(frontier->CountInState(SourceHealth::kQuarantined), 1u);
    ASSERT_NE(frontier->participant(b_id), nullptr);
    EXPECT_EQ(frontier->participant(b_id)->health,
              SourceHealth::kQuarantined);
  }
  const std::string reference = ReadFile(ref_dir + "/sink-OUT.out");
  ASSERT_FALSE(reference.empty());

  // Crash run: the server aborts at t=1s — after the quarantine, before
  // the horizon.
  const std::string dir = FreshDir("quarantine_crash");
  uint64_t durable_at_crash = 0;
  uint64_t violations_at_crash = 0;
  {
    RecoveryHarness harness(kQuarantinePlan, dir, /*crash_at=*/1 * kSecond);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Send(schedule).ok());
    client.Close();
    Status run = harness.Join();
    ASSERT_EQ(run.code(), StatusCode::kAborted) << run.ToString();
    // The crash landed inside the quarantine window.
    EXPECT_EQ(harness.executor->frontier()->participant(b_id)->health,
              SourceHealth::kQuarantined);
    violations_at_crash = harness.executor->frontier()->violations();
    EXPECT_GT(violations_at_crash, 0u);
    for (const auto& [stream, seq] : harness.recovery->durable_seqs()) {
      durable_at_crash += seq;
    }
    ASSERT_GT(durable_at_crash, 0u);
    ASSERT_LT(durable_at_crash, schedule.size());
  }

  // Recovery run: the restored tracker already holds the quarantine —
  // checkpoint state plus the WAL tail replay, before any new frame.
  {
    RecoveryHarness harness(kQuarantinePlan, dir);
    ASSERT_TRUE(harness.recovery->recovered());
    // Start + WAL replay inline (instead of Serve()) so the tracker can
    // be inspected single-threaded: checkpoint state plus the replayed
    // tail, before the run thread exists and before any new frame.
    ASSERT_TRUE(harness.server->Start().ok());
    ASSERT_TRUE(harness.server->ReplayRecoveredWal().ok());
    const FrontierTracker* frontier = harness.executor->frontier();
    ASSERT_NE(frontier->participant(b_id), nullptr);
    EXPECT_EQ(frontier->participant(b_id)->health,
              SourceHealth::kQuarantined);
    EXPECT_GT(frontier->violations(), 0u);
    harness.thread = std::thread(
        [&harness] { harness.run_status = harness.server->Run(); });

    FeedClientOptions copts;
    copts.port = harness.server->port();
    copts.resume = true;
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Handshake().ok());
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    EXPECT_EQ(*sent, schedule.size() - durable_at_crash);
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
    EXPECT_EQ(harness.server->resume_rejects(), 0u);
    // Still quarantined at end of run: restart granted no amnesty.
    EXPECT_EQ(frontier->participant(b_id)->health,
              SourceHealth::kQuarantined);
  }

  // Byte-identity holds across the quarantine + crash + recovery episode.
  EXPECT_EQ(ReadFile(dir + "/sink-OUT.out"), reference);
}

TEST(RecoveryLoopbackTest, HandshakeOnFreshServerAcksNothing) {
  const std::vector<ScheduledFrame> schedule = BuildSchedule(kPlan);
  const std::string dir = FreshDir("fresh");
  RecoveryHarness harness(kPlan, dir);
  EXPECT_FALSE(harness.recovery->recovered());
  harness.Serve();

  FeedClientOptions copts;
  copts.port = harness.server->port();
  copts.resume = true;
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Handshake().ok());
  EXPECT_TRUE(client.acked().empty());
  Result<uint64_t> sent = client.Send(schedule);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, schedule.size());
  client.Close();
  ASSERT_TRUE(harness.Join().ok());
  EXPECT_EQ(harness.server->frames_ingested(), schedule.size());
  EXPECT_EQ(harness.server->resume_rejects(), 0u);
}

TEST(RecoveryLoopbackTest, StaleResumeTokenIsRejectedAndCounted) {
  const std::string dir = FreshDir("stale");
  RecoveryHarness harness(kPlan, dir);
  harness.Serve();

  // A feeder resuming against the wrong (here: empty) durable state — e.g.
  // the recovery directory was wiped between its HELLO and now. It claims
  // 5 durable frames on stream 0; the server holds none.
  FeedClientOptions copts;
  copts.port = harness.server->port();
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  WireFrame stale;
  stale.type = WireFrame::Type::kResume;
  stale.values.emplace_back(int64_t{0});
  stale.values.emplace_back(int64_t{5});
  ASSERT_TRUE(client.SendFrame(stale).ok());
  client.Close();
  ASSERT_TRUE(harness.Join().ok());

  EXPECT_EQ(harness.server->resume_rejects(), 1u);
  EXPECT_EQ(harness.server->frames_ingested(), 0u);
  std::vector<ConnectionReport> reports =
      harness.server->connection_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].open);
  EXPECT_GE(reports[0].protocol_errors, 1u);
}

TEST(RecoveryLoopbackTest, GracefulRestartReproducesTheSameOutput) {
  const std::vector<ScheduledFrame> schedule = BuildSchedule(kPlan);
  const std::string dir = FreshDir("graceful");
  std::string first_output;
  {
    RecoveryHarness harness(kPlan, dir);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Send(schedule).ok());
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    // The streamets_serve shutdown epilogue: final checkpoint, then flush.
    ASSERT_TRUE(harness.server->CheckpointNow().ok());
    ASSERT_TRUE(harness.recovery->FlushWal().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
    EXPECT_GT(harness.recovery->checkpoints_written(), 0u);
    first_output = ReadFile(dir + "/sink-OUT.out");
    ASSERT_FALSE(first_output.empty());
  }
  // Restart with no new input: the final checkpoint covers the whole run,
  // so the restarted server replays nothing, re-emits nothing, and the
  // durable output is untouched. A recovered server waits for peers to
  // reconnect, so a connect-and-hang-up is what releases the run.
  {
    RecoveryHarness harness(kPlan, dir);
    ASSERT_TRUE(harness.recovery->recovered());
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
    EXPECT_EQ(harness.recovery->replayed_frames(), 0u);
  }
  EXPECT_EQ(ReadFile(dir + "/sink-OUT.out"), first_output);
}

// An equi-join whose window state blows through a 2 KiB state-store budget,
// so most blocks live as spilled block files while the server runs. The
// @SPILL@ token is replaced with a per-test scratch directory — the crash
// run and the recovery run must share it, because recovery claims the
// crash incarnation's block files by reference instead of re-writing them.
constexpr char kSpillPlanTemplate[] = R"(
stream L ts=internal
stream R ts=internal
join J in=L,R window=1s left_field=0 right_field=0
sink OUT in=J
feed L process=poisson rate=80 seed=31 payload=randint lo=0 hi=8
feed R process=poisson rate=60 seed=32 payload=randint lo=0 hi=8
run horizon=2s ets=on-demand
state mem_budget=2k spill_dir=@SPILL@ granularity=250ms
)";

std::string SpillPlan(const std::string& spill_dir) {
  std::string plan = kSpillPlanTemplate;
  const std::string token = "@SPILL@";
  size_t at = plan.find(token);
  DSMS_CHECK(at != std::string::npos);
  plan.replace(at, token.size(), spill_dir);
  return plan;
}

/// Kill-9 with larger-than-memory join state: at the crash, most of the
/// join windows live in spilled block files, the durable checkpoint holds
/// only descriptors referencing them (manifest + refcounts), and the WAL
/// holds the post-checkpoint tail. Recovery claims the referenced files,
/// GCs the orphans from after the checkpoint, replays the tail, and the
/// resumed run's durable sink output is byte-identical to an uninterrupted
/// spilling run's.
TEST(RecoveryLoopbackTest, KillMidRunWithSpilledStateRecoversByteIdentical) {
  // Reference: the spilling join served to completion, no interruption.
  const std::string ref_spill = FreshDir("spill_reference_blocks");
  const std::string ref_plan = SpillPlan(ref_spill);
  const std::vector<ScheduledFrame> schedule = BuildSchedule(ref_plan);
  ASSERT_GT(schedule.size(), 0u);
  const std::string ref_dir = FreshDir("spill_reference");
  {
    RecoveryHarness harness(ref_plan, ref_dir);
    ASSERT_TRUE(harness.experiment->storage.enabled);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    EXPECT_EQ(*sent, schedule.size());
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
    // The run must actually have exceeded the budget, or this degenerates
    // into the in-memory recovery test above.
    EXPECT_GT(harness.graph->state_store()->stats().spills, 0u);
  }
  const std::string reference = ReadFile(ref_dir + "/sink-OUT.out");
  ASSERT_FALSE(reference.empty());

  // Crash run: aborts at t=1s with a full window of state on both join
  // sides, most of it in block files under the shared spill directory.
  const std::string spill = FreshDir("spill_crash_blocks");
  const std::string plan = SpillPlan(spill);
  const std::string dir = FreshDir("spill_crash");
  uint64_t durable_at_crash = 0;
  {
    RecoveryHarness harness(plan, dir, /*crash_at=*/1 * kSecond);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    client.Close();
    Status run = harness.Join();
    ASSERT_EQ(run.code(), StatusCode::kAborted) << run.ToString();
    // The kill landed with spilled state live on disk — the scenario this
    // test exists for.
    EXPECT_GT(harness.graph->state_store()->stats().spills, 0u);
    std::vector<std::pair<uint64_t, std::string>> blocks;
    ASSERT_TRUE(ListBlockFiles(spill, &blocks).ok());
    ASSERT_GT(blocks.size(), 0u);
    for (const auto& [stream, seq] : harness.recovery->durable_seqs()) {
      durable_at_crash += seq;
    }
    ASSERT_GT(durable_at_crash, 0u);
    ASSERT_LT(durable_at_crash, schedule.size());
  }

  // Recovery run: the store is configured first, the restored manifest
  // claims the crash incarnation's block files, orphans are GC'd, the WAL
  // tail replays, and the resuming client re-sends only the lost frames.
  {
    RecoveryHarness harness(plan, dir);
    ASSERT_TRUE(harness.recovery->recovered());
    harness.Serve();

    FeedClientOptions copts;
    copts.port = harness.server->port();
    copts.resume = true;
    FeedClient client(copts);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Handshake().ok());
    Result<uint64_t> sent = client.Send(schedule);
    ASSERT_TRUE(sent.ok());
    EXPECT_EQ(*sent, schedule.size() - durable_at_crash);
    client.Close();
    ASSERT_TRUE(harness.Join().ok());
    ASSERT_TRUE(harness.recovery->FlushSinks().ok());
    EXPECT_EQ(harness.server->resume_rejects(), 0u);
  }

  // Crash + recover + resume with spilled state produced the same bytes as
  // the uninterrupted spilling run.
  EXPECT_EQ(ReadFile(dir + "/sink-OUT.out"), reference);
}

}  // namespace
}  // namespace dsms
