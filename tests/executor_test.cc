#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"

#include "common/clock.h"
#include "core/tuple.h"
#include "exec/dfs_executor.h"
#include "exec/round_robin_executor.h"
#include "graph/graph_builder.h"
#include "operators/sink.h"
#include "operators/source.h"

namespace dsms {
namespace {

/// Owns the paper's union graph (Figure 4 with selections replaced by
/// pass-everything filters for determinism) plus clock and executor.
struct UnionGraphRig {
  explicit UnionGraphRig(ExecConfig config,
                         TimestampKind kind = TimestampKind::kInternal,
                         Duration skew = 0) {
    GraphBuilder builder;
    s1 = builder.AddSource("S1", kind, skew);
    s2 = builder.AddSource("S2", kind, skew);
    auto* f1 = builder.AddFilter("F1", [](const Tuple&) { return true; });
    auto* f2 = builder.AddFilter("F2", [](const Tuple&) { return true; });
    u = builder.AddUnion("U", kind != TimestampKind::kLatent);
    sink = builder.AddSink("OUT");
    builder.Connect(s1, f1);
    builder.Connect(s2, f2);
    builder.Connect(f1, u);
    builder.Connect(f2, u);
    builder.Connect(u, sink);
    auto built = builder.Build();
    DSMS_CHECK_OK(built.status());
    graph = std::move(built).value();
    sink->set_collect(true);
    executor = std::make_unique<DfsExecutor>(graph.get(), &clock, config);
  }

  std::unique_ptr<QueryGraph> graph;
  VirtualClock clock;
  Source* s1;
  Source* s2;
  Union* u;
  Sink* sink;
  std::unique_ptr<DfsExecutor> executor;
};

ExecConfig NoEts() { return ExecConfig{}; }

ExecConfig OnDemand() {
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  return config;
}

TEST(DfsExecutorTest, IdleOnEmptyGraph) {
  UnionGraphRig rig(NoEts());
  EXPECT_FALSE(rig.executor->RunStep());
  EXPECT_EQ(rig.executor->stats().idle_returns, 1u);
}

TEST(DfsExecutorTest, NoEtsUnionBlocksUntilOtherStream) {
  UnionGraphRig rig(NoEts());
  rig.s1->Ingest({Value(int64_t{1})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  // The tuple reached the union but cannot pass it.
  EXPECT_EQ(rig.sink->data_delivered(), 0u);
  EXPECT_TRUE(rig.u->HasPendingData());

  // A tuple on the other stream (with a later timestamp) releases it.
  rig.clock.AdvanceTo(rig.clock.now() + kSecond);
  rig.s2->Ingest({Value(int64_t{2})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  EXPECT_EQ(rig.sink->data_delivered(), 1u);  // the blocked S1 tuple
}

TEST(DfsExecutorTest, OnDemandEtsReleasesImmediately) {
  UnionGraphRig rig(OnDemand());
  rig.clock.AdvanceTo(100);
  rig.s1->Ingest({Value(int64_t{1})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  EXPECT_EQ(rig.sink->data_delivered(), 1u);
  EXPECT_GE(rig.executor->ets_generated(), 1u);
  EXPECT_EQ(rig.executor->stats().ets_generated,
            rig.executor->ets_generated());
}

TEST(DfsExecutorTest, NoEtsWithoutIdleWaitingOperator) {
  // The on-demand guard: an empty graph must not produce ETS livelock.
  UnionGraphRig rig(OnDemand());
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(rig.executor->RunStep());
  EXPECT_EQ(rig.executor->ets_generated(), 0u);
}

TEST(DfsExecutorTest, EtsCarriesCurrentClock) {
  UnionGraphRig rig(OnDemand());
  rig.clock.AdvanceTo(12345);
  rig.s1->Ingest({Value(int64_t{1})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  ASSERT_EQ(rig.sink->collected().size(), 1u);
  // The delivered tuple's timestamp is its ingestion time.
  EXPECT_EQ(rig.sink->collected()[0].timestamp(), 12345);
  // And the union saw an ETS at some time >= 12345 on the idle input.
  EXPECT_GE(rig.u->tsm(1), 12345);
}

TEST(DfsExecutorTest, ClockAdvancesByCosts) {
  ExecConfig config = OnDemand();
  config.costs.data_step = 10;
  config.costs.punctuation_step = 4;
  config.costs.empty_step = 1;
  config.costs.backtrack_hop = 1;
  config.costs.ets_generation = 2;
  UnionGraphRig rig(config);
  rig.s1->Ingest({Value(int64_t{1})}, 0);
  Timestamp before = rig.clock.now();
  rig.executor->RunUntilIdle();
  EXPECT_GT(rig.clock.now(), before);
  const ExecStats& stats = rig.executor->stats();
  Timestamp expected = static_cast<Timestamp>(
      stats.data_steps * 10 + stats.punctuation_steps * 4 +
      stats.empty_steps * 1 + stats.backtrack_hops * 1 +
      stats.ets_generated * 2);
  EXPECT_EQ(rig.clock.now() - before, expected);
}

TEST(DfsExecutorTest, FifoOrderThroughSimplePath) {
  UnionGraphRig rig(OnDemand());
  for (int i = 0; i < 10; ++i) {
    rig.clock.Advance(100);
    rig.s1->Ingest({Value(int64_t{i})}, rig.clock.now());
  }
  rig.executor->RunUntilIdle();
  ASSERT_EQ(rig.sink->collected().size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rig.sink->collected()[i].value(0).int64_value(), i);
  }
}

TEST(DfsExecutorTest, IdleTrackerRecordsUnionBlocking) {
  UnionGraphRig rig(NoEts());
  rig.clock.AdvanceTo(1000);
  rig.s1->Ingest({Value(int64_t{1})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  const IdleWaitTracker* tracker = rig.executor->idle_tracker(rig.u->id());
  ASSERT_NE(tracker, nullptr);
  EXPECT_TRUE(tracker->blocked());
  rig.clock.AdvanceTo(rig.clock.now() + 10000);
  rig.s2->Ingest({Value(int64_t{2})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  // The S1 tuple was released (it idled >= 10 ms); the union is now blocked
  // the other way around, holding the fresher S2 tuple.
  EXPECT_EQ(rig.sink->data_delivered(), 1u);
  EXPECT_TRUE(tracker->blocked());
  EXPECT_GE(tracker->total_idle(rig.clock.now()), 10000);
}

TEST(DfsExecutorTest, NoIdleTrackerForNonIwp) {
  UnionGraphRig rig(NoEts());
  EXPECT_EQ(rig.executor->idle_tracker(rig.sink->id()), nullptr);
  EXPECT_NE(rig.executor->idle_tracker(rig.u->id()), nullptr);
}

TEST(DfsExecutorTest, EtsPunctuationAbsorbedBeforeSink) {
  UnionGraphRig rig(OnDemand());
  rig.clock.AdvanceTo(50);
  rig.s1->Ingest({Value(int64_t{1})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  // The ETS flowed through F2 into the union, which absorbed it; its
  // watermark (bounded by the data side's TSM) added no information, so
  // nothing but data reaches the sink.
  EXPECT_GE(rig.u->stats().punctuation_in, 1u);
  EXPECT_EQ(rig.sink->punctuation_eliminated(), 0u);
  for (const Tuple& t : rig.sink->collected()) EXPECT_TRUE(t.is_data());
}

TEST(DfsExecutorTest, EtsMinIntervalThrottles) {
  ExecConfig config = OnDemand();
  config.ets.min_interval = kSecond;
  UnionGraphRig rig(config);
  rig.clock.AdvanceTo(100);
  rig.s1->Ingest({Value(int64_t{1})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  uint64_t first_batch = rig.executor->ets_generated();
  EXPECT_GE(first_batch, 1u);
  // A few microseconds later: throttled, the union stays blocked.
  rig.clock.Advance(10);
  rig.s1->Ingest({Value(int64_t{2})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  EXPECT_EQ(rig.executor->ets_generated(), first_batch);
  EXPECT_EQ(rig.sink->data_delivered(), 1u);
  // After the interval passes, ETS resumes.
  rig.clock.Advance(2 * kSecond);
  rig.s1->Ingest({Value(int64_t{3})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  EXPECT_GT(rig.executor->ets_generated(), first_batch);
  EXPECT_EQ(rig.sink->data_delivered(), 3u);
}

TEST(DfsExecutorTest, ExternalEtsUsesSkewBound) {
  UnionGraphRig rig(OnDemand(), TimestampKind::kExternal,
                    /*skew=*/100 * kMillisecond);
  rig.clock.AdvanceTo(kSecond);
  // S2 saw a tuple long ago (app ts 0); S1 then gets one at now − 10 ms.
  rig.s2->IngestExternal(0, {Value(int64_t{9})}, 0);
  rig.executor->RunUntilIdle();  // S2's tuple blocks at union (S1 unseen)
  rig.s1->IngestExternal(kSecond - 10 * kMillisecond, {Value(int64_t{1})},
                         rig.clock.now());
  rig.executor->RunUntilIdle();
  // S2's ETS bound (0 + elapsed − δ) is just below S1's tuple timestamp at
  // this instant: the S2 tuple flows (S1's TSM passed 0) but S1's tuple
  // must idle-wait; a useless weaker ETS is suppressed.
  EXPECT_EQ(rig.sink->data_delivered(), 1u);
  // After real time passes, the next activation's sweep finds the bound
  // sufficient and releases it.
  rig.clock.Advance(200 * kMillisecond);
  rig.executor->RunUntilIdle();
  EXPECT_EQ(rig.sink->data_delivered(), 2u);
  EXPECT_GE(rig.executor->ets_generated(), 1u);
}

TEST(DfsExecutorTest, LatentGraphNeverGeneratesEts) {
  UnionGraphRig rig(OnDemand(), TimestampKind::kLatent);
  rig.s1->Ingest({Value(int64_t{1})}, 0);
  rig.executor->RunUntilIdle();
  EXPECT_EQ(rig.sink->data_delivered(), 1u);  // flows straight through
  EXPECT_EQ(rig.executor->ets_generated(), 0u);
}

TEST(DfsExecutorTest, RunStepTerminatesOnBlockedGraph) {
  // Even with ETS enabled, a blocked union with a non-advancing bound must
  // settle to idle rather than spin.
  UnionGraphRig rig(OnDemand());
  rig.s1->Ingest({Value(int64_t{1})}, rig.clock.now());
  uint64_t steps = rig.executor->RunUntilIdle();
  EXPECT_LT(steps, 1000u);
  EXPECT_FALSE(rig.executor->RunStep());
  EXPECT_FALSE(rig.executor->RunStep());
}

TEST(DfsExecutorTest, StrictUnionWithStrandedPunctuationDoesNotLivelock) {
  // Regression: a strict-mode (Figure 1) union holding a lone punctuation
  // while its other input is empty used to ping-pong with its predecessor
  // (backtrack chose the non-empty input; pred's Forward bounced straight
  // back), burning millions of empty steps per inter-arrival gap.
  GraphBuilder builder;
  Source* s1 = builder.AddSource("S1", TimestampKind::kInternal);
  Source* s2 = builder.AddSource("S2", TimestampKind::kInternal);
  auto* f1 = builder.AddFilter("F1", [](const Tuple&) { return true; });
  auto* f2 = builder.AddFilter("F2", [](const Tuple&) { return true; });
  Union* u = builder.AddUnion("U", /*ordered=*/true,
                              /*use_tsm_registers=*/false);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s1, f1);
  builder.Connect(s2, f2);
  builder.Connect(f1, u);
  builder.Connect(f2, u);
  builder.Connect(u, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  DfsExecutor executor(graph->get(), &clock, config);

  // Put the union into the stranded state: data on S1 gets released by an
  // ETS on S2; the ETS punctuation is left alone in input 1 afterwards.
  clock.AdvanceTo(1000);
  s1->Ingest({Value(int64_t{1})}, clock.now());
  uint64_t steps = executor.RunUntilIdle();
  EXPECT_LT(steps, 100u);
  EXPECT_EQ(sink->data_delivered(), 1u);

  // Executor must settle (return false) promptly, repeatedly.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(executor.RunStep());
  EXPECT_LT(executor.stats().empty_steps, 50u);
  (void)f1;
  (void)f2;
  (void)u;
}

struct RrRig {
  explicit RrRig(ExecConfig config, int quantum = 4) {
    GraphBuilder builder;
    s1 = builder.AddSource("S1", TimestampKind::kInternal);
    s2 = builder.AddSource("S2", TimestampKind::kInternal);
    u = builder.AddUnion("U");
    sink = builder.AddSink("OUT");
    builder.Connect(s1, u);
    builder.Connect(s2, u);
    builder.Connect(u, sink);
    auto built = builder.Build();
    DSMS_CHECK_OK(built.status());
    graph = std::move(built).value();
    sink->set_collect(true);
    executor = std::make_unique<RoundRobinExecutor>(graph.get(), &clock,
                                                    config, quantum);
  }

  std::unique_ptr<QueryGraph> graph;
  VirtualClock clock;
  Source* s1;
  Source* s2;
  Union* u;
  Sink* sink;
  std::unique_ptr<RoundRobinExecutor> executor;
};

TEST(RoundRobinExecutorTest, DeliversSameTuplesAsDfs) {
  RrRig rig(OnDemand());
  for (int i = 0; i < 5; ++i) {
    rig.clock.Advance(1000);
    rig.s1->Ingest({Value(int64_t{i})}, rig.clock.now());
    rig.s2->Ingest({Value(int64_t{100 + i})}, rig.clock.now());
  }
  rig.executor->RunUntilIdle();
  EXPECT_EQ(rig.sink->data_delivered(), 10u);
}

TEST(RoundRobinExecutorTest, OnDemandEtsWorksViaSweep) {
  RrRig rig(OnDemand());
  rig.clock.AdvanceTo(777);
  rig.s1->Ingest({Value(int64_t{1})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  EXPECT_EQ(rig.sink->data_delivered(), 1u);
  EXPECT_GE(rig.executor->ets_generated(), 1u);
}

TEST(RoundRobinExecutorTest, MarksIdleWaitingWhilePassingBy) {
  ExecConfig config;  // no ETS
  RrRig rig(config);
  rig.s1->Ingest({Value(int64_t{1})}, 0);
  rig.executor->RunUntilIdle();
  const IdleWaitTracker* tracker = rig.executor->idle_tracker(rig.u->id());
  ASSERT_NE(tracker, nullptr);
  EXPECT_TRUE(tracker->blocked());
}

TEST(RoundRobinExecutorTest, RejectsNonPositiveQuantum) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  Sink* sink = builder.AddSink("O");
  builder.Connect(s, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  VirtualClock clock;
  EXPECT_DEATH(
      RoundRobinExecutor(graph->get(), &clock, ExecConfig{}, 0), "");
}

TEST(ExecutorBaseTest, RequiresValidatedGraph) {
  QueryGraph graph;
  graph.Add(std::make_unique<Source>("S", 0, TimestampKind::kInternal));
  VirtualClock clock;
  EXPECT_DEATH(DfsExecutor(&graph, &clock, ExecConfig{}), "");
}

}  // namespace
}  // namespace dsms
