#include <string>

#include <gtest/gtest.h>

#include "core/schema.h"
#include "core/value.h"

namespace dsms {
namespace {

TEST(ValueTest, DefaultIsInt64Zero) {
  Value v;
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.int64_value(), 0);
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value(int64_t{7}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value(std::string("hi")).type(), ValueType::kString);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(int64_t{-3}).int64_value(), -3);
  EXPECT_DOUBLE_EQ(Value(1.5).double_value(), 1.5);
  EXPECT_EQ(Value("abc").string_value(), "abc");
  EXPECT_TRUE(Value(true).bool_value());
}

TEST(ValueTest, WrongAccessorDies) {
  EXPECT_DEATH(Value(1.5).int64_value(), "");
  EXPECT_DEATH(Value(int64_t{1}).string_value(), "");
}

TEST(ValueTest, AsDoubleConversions) {
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value(true).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(Value(false).AsDouble(), 0.0);
  EXPECT_DEATH(Value("s").AsDouble(), "");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // type matters
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "string");
}

TEST(SchemaTest, EmptySchema) {
  Schema schema;
  EXPECT_EQ(schema.num_fields(), 0);
  EXPECT_EQ(schema.FieldIndex("x"), -1);
}

TEST(SchemaTest, FieldLookup) {
  Schema schema{{"ts", ValueType::kInt64}, {"price", ValueType::kDouble}};
  EXPECT_EQ(schema.num_fields(), 2);
  EXPECT_EQ(schema.FieldIndex("price"), 1);
  EXPECT_EQ(schema.FieldIndex("missing"), -1);
  EXPECT_EQ(schema.field(0).name, "ts");
  EXPECT_EQ(schema.field(1).type, ValueType::kDouble);
}

TEST(SchemaTest, FieldOutOfRangeDies) {
  Schema schema{{"a", ValueType::kInt64}};
  EXPECT_DEATH(schema.field(1), "");
  EXPECT_DEATH(schema.field(-1), "");
}

TEST(SchemaTest, ConcatDisambiguatesDuplicates) {
  Schema left{{"id", ValueType::kInt64}, {"v", ValueType::kDouble}};
  Schema right{{"id", ValueType::kInt64}, {"w", ValueType::kDouble}};
  Schema joined = left.Concat(right);
  EXPECT_EQ(joined.num_fields(), 4);
  EXPECT_EQ(joined.field(2).name, "right.id");
  EXPECT_EQ(joined.field(3).name, "w");
}

TEST(SchemaTest, Equality) {
  Schema a{{"x", ValueType::kInt64}};
  Schema b{{"x", ValueType::kInt64}};
  Schema c{{"x", ValueType::kDouble}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(SchemaTest, ToString) {
  Schema schema{{"ts", ValueType::kInt64}, {"sym", ValueType::kString}};
  EXPECT_EQ(schema.ToString(), "(ts:int64, sym:string)");
}

}  // namespace
}  // namespace dsms
