// Parameterized conservation properties for the window aggregates: counts
// and sums over windows must equal the totals of the tuples fed in,
// regardless of arrival pattern, window geometry, or grouping.

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "core/value.h"
#include "operators/grouped_aggregate.h"
#include "operators/operator.h"
#include "operators/window_aggregate.h"

namespace dsms {
namespace {

class TumblingCountConservation
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(TumblingCountConservation, WindowCountsSumToTotal) {
  auto [seed, window_ms] = GetParam();
  const Duration window = window_ms * kMillisecond;
  WindowAggregate agg("a", AggKind::kCount, 0, window, window);
  StreamBuffer in("in");
  StreamBuffer out("out");
  agg.AddInput(&in);
  agg.AddOutput(&out);
  ManualExecContext ctx;

  Pcg32 rng(seed);
  Timestamp ts = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    ts += rng.NextInt(1, 50 * kMillisecond);
    in.Push(Tuple::MakeData(ts, {Value(int64_t{1})}));
  }
  in.Push(Tuple::MakePunctuation(ts + window));
  for (int guard = 0; guard < 100000 && agg.Step(ctx).more; ++guard) {
  }

  double total = 0;
  Timestamp previous = kMinTimestamp;
  while (!out.empty()) {
    Tuple t = out.Pop();
    EXPECT_GE(t.timestamp(), previous);  // ordered output
    previous = t.timestamp();
    if (t.is_data()) total += t.value(1).AsDouble();
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TumblingCountConservation,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 4, 5),
                       ::testing::Values(10, 100, 1000)));

class SlidingSumOvercount
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(SlidingSumOvercount, EachTupleCountedOncePerCoveringWindow) {
  // window = k * slide: every tuple lies in exactly k windows, so the sum
  // over all window sums equals k times the total.
  auto [seed, k] = GetParam();
  const Duration slide = 100 * kMillisecond;
  const Duration window = k * slide;
  WindowAggregate agg("a", AggKind::kSum, 0, window, slide);
  StreamBuffer in("in");
  StreamBuffer out("out");
  agg.AddInput(&in);
  agg.AddOutput(&out);
  ManualExecContext ctx;

  Pcg32 rng(seed);
  Timestamp ts = window;  // keep clear of the partial leading windows
  double fed = 0;
  for (int i = 0; i < 300; ++i) {
    ts += rng.NextInt(1, 30 * kMillisecond);
    int64_t v = rng.NextInt(1, 9);
    fed += static_cast<double>(v);
    in.Push(Tuple::MakeData(ts, {Value(v)}));
  }
  in.Push(Tuple::MakePunctuation(ts + window + slide));
  for (int guard = 0; guard < 100000 && agg.Step(ctx).more; ++guard) {
  }

  double window_total = 0;
  while (!out.empty()) {
    Tuple t = out.Pop();
    if (t.is_data()) window_total += t.value(1).AsDouble();
  }
  EXPECT_DOUBLE_EQ(window_total, static_cast<double>(k) * fed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlidingSumOvercount,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Values(1, 2, 4)));

class GroupedConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupedConservation, PerGroupSumsMatchReference) {
  const Duration window = 500 * kMillisecond;
  GroupedWindowAggregate agg("g", AggKind::kSum, /*key_field=*/0,
                             /*agg_field=*/1, window, window);
  StreamBuffer in("in");
  StreamBuffer out("out");
  agg.AddInput(&in);
  agg.AddOutput(&out);
  ManualExecContext ctx;

  Pcg32 rng(GetParam());
  Timestamp ts = 0;
  std::map<int64_t, double> reference;
  for (int i = 0; i < 400; ++i) {
    ts += rng.NextInt(1, 20 * kMillisecond);
    int64_t key = rng.NextInt(0, 6);
    int64_t v = rng.NextInt(1, 100);
    reference[key] += static_cast<double>(v);
    in.Push(Tuple::MakeData(ts, {Value(key), Value(v)}));
  }
  in.Push(Tuple::MakePunctuation(ts + window));
  for (int guard = 0; guard < 100000 && agg.Step(ctx).more; ++guard) {
  }

  std::map<int64_t, double> actual;
  while (!out.empty()) {
    Tuple t = out.Pop();
    if (t.is_data()) {
      actual[t.value(1).int64_value()] += t.value(2).AsDouble();
    }
  }
  EXPECT_EQ(actual, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupedConservation,
                         ::testing::Values<uint64_t>(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace dsms
