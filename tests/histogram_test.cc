#include "metrics/histogram.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"

namespace dsms {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 42.0);
}

TEST(HistogramTest, ExactMeanMinMax) {
  Histogram h;
  for (int64_t v : {10, 20, 30, 40}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 40);
  EXPECT_DOUBLE_EQ(h.sum(), 100.0);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Values below one octave of sub-buckets land in per-value buckets.
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(7);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 7.0);
}

TEST(HistogramTest, QuantileOrderingMonotone) {
  Histogram h;
  Pcg32 rng(5);
  for (int i = 0; i < 10000; ++i) h.Record(rng.NextInt(0, 1000000));
  double previous = -1;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    double v = h.Quantile(q);
    EXPECT_GE(v, previous);
    previous = v;
  }
}

TEST(HistogramTest, QuantileRelativeErrorBounded) {
  // Uniform samples: the true q-quantile of U[0, 1e6] is q*1e6. Bucketing
  // gives ~3% relative resolution.
  Histogram h;
  Pcg32 rng(6);
  for (int i = 0; i < 200000; ++i) h.Record(rng.NextInt(0, 1000000));
  for (double q : {0.1, 0.5, 0.9}) {
    double expected = q * 1000000.0;
    EXPECT_NEAR(h.Quantile(q) / expected, 1.0, 0.05) << "q=" << q;
  }
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Record(int64_t{1} << 50);
  h.Record((int64_t{1} << 50) + 12345);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.Quantile(0.5), static_cast<double>(int64_t{1} << 49));
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 30);
  EXPECT_DOUBLE_EQ(a.mean(), 20.0);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.Record(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5);
}

TEST(HistogramTest, MergeEmptyIsNoop) {
  Histogram a;
  Histogram b;
  a.Record(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.max(), 5);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.Record(3);
  EXPECT_EQ(h.min(), 3);
  EXPECT_EQ(h.max(), 3);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Record(1);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

/// Property sweep: for several distributions, mean from the histogram is
/// exact and quantiles bracket the data.
class HistogramDistributionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramDistributionTest, QuantilesBracketedByMinMax) {
  Pcg32 rng(GetParam());
  Histogram h;
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextExponentialGap(100.0);
    h.Record(v);
    sum += static_cast<double>(v);
  }
  EXPECT_DOUBLE_EQ(h.mean(), sum / 5000.0);
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    double v = h.Quantile(q);
    EXPECT_GE(v, static_cast<double>(h.min()));
    EXPECT_LE(v, static_cast<double>(h.max()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramDistributionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dsms
