#include "sim/experiment_spec.h"

#include <string>

#include <gtest/gtest.h>

#include "common/time.h"

namespace dsms {
namespace {

constexpr char kBasicExperiment[] = R"(
stream FAST ts=internal
stream SLOW ts=internal
union U in=FAST,SLOW
sink OUT in=U
feed FAST process=poisson rate=50 seed=1
feed SLOW process=poisson rate=0.5 seed=2
run horizon=30s warmup=5s ets=on-demand
)";

TEST(ExperimentSpecTest, ParsesPlanAndExecutionStatements) {
  auto experiment = ParseExperiment(kBasicExperiment);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  EXPECT_EQ(experiment->feeds.size(), 2u);
  EXPECT_EQ(experiment->feeds[0].source, "FAST");
  EXPECT_EQ(experiment->feeds[0].kind, FeedSpec::Kind::kPoisson);
  EXPECT_DOUBLE_EQ(experiment->feeds[0].rate, 50.0);
  EXPECT_EQ(experiment->run.horizon, 30 * kSecond);
  EXPECT_EQ(experiment->run.warmup, 5 * kSecond);
  EXPECT_EQ(experiment->run.ets, EtsMode::kOnDemand);
  EXPECT_EQ(experiment->run.executor, ExecutorKind::kDfs);
}

TEST(ExperimentSpecTest, RunsEndToEnd) {
  auto experiment = ParseExperiment(kBasicExperiment);
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  auto report = RunExperiment(&*experiment);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->end_time, 30 * kSecond);
  ASSERT_EQ(report->sinks.size(), 1u);
  EXPECT_EQ(report->sinks[0].name, "OUT");
  EXPECT_GT(report->sinks[0].tuples, 500u);
  EXPECT_LT(report->sinks[0].mean_latency_ms, 1.0);
  EXPECT_GT(report->ets_generated, 10u);
  EXPECT_NE(report->operator_stats.find("U"), std::string::npos);
}

TEST(ExperimentSpecTest, DeterministicAcrossRuns) {
  auto e1 = ParseExperiment(kBasicExperiment);
  auto e2 = ParseExperiment(kBasicExperiment);
  ASSERT_TRUE(e1.ok() && e2.ok());
  auto r1 = RunExperiment(&*e1);
  auto r2 = RunExperiment(&*e2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->sinks[0].tuples, r2->sinks[0].tuples);
  EXPECT_DOUBLE_EQ(r1->sinks[0].mean_latency_ms, r2->sinks[0].mean_latency_ms);
}

TEST(ExperimentSpecTest, HeartbeatStatement) {
  auto experiment = ParseExperiment(R"(
stream A ts=internal
stream B ts=internal
union U in=A,B
sink OUT in=U
feed A process=constant rate=5
heartbeat B period=100ms phase=5ms
run horizon=10s ets=none
)");
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  ASSERT_EQ(experiment->heartbeats.size(), 1u);
  EXPECT_EQ(experiment->heartbeats[0].period, 100 * kMillisecond);
  auto report = RunExperiment(&*experiment);
  ASSERT_TRUE(report.ok()) << report.status();
  // Heartbeats released the data: everything delivered within the period.
  EXPECT_GT(report->sinks[0].tuples, 40u);
  EXPECT_LT(report->sinks[0].mean_latency_ms, 120.0);
  EXPECT_EQ(report->ets_generated, 0u);
}

TEST(ExperimentSpecTest, BurstyAndRandintPayload) {
  auto experiment = ParseExperiment(R"(
stream S ts=internal
gaggregate G in=S fn=count key=0 window=1s
sink OUT in=G
feed S process=bursty burst_rate=200 idle_rate=1 burst_len=100ms idle_len=1s seed=3 payload=randint lo=0 hi=4 fields=1
run horizon=30s
)");
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  EXPECT_EQ(experiment->feeds[0].kind, FeedSpec::Kind::kBursty);
  EXPECT_EQ(experiment->feeds[0].payload, FeedSpec::Payload::kRandInt);
  auto report = RunExperiment(&*experiment);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->sinks[0].tuples, 5u);  // per-key per-window counts
}

TEST(ExperimentSpecTest, RoundRobinExecutorOption) {
  auto experiment = ParseExperiment(R"(
stream S ts=internal
sink OUT in=S
feed S process=constant rate=10
run horizon=5s executor=round-robin quantum=3
)");
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  EXPECT_EQ(experiment->run.executor, ExecutorKind::kRoundRobin);
  EXPECT_EQ(experiment->run.quantum, 3);
  auto report = RunExperiment(&*experiment);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NEAR(static_cast<double>(report->sinks[0].tuples), 50.0, 2.0);
}

TEST(ExperimentSpecTest, FaultStatementAndRobustnessRunKeys) {
  auto experiment = ParseExperiment(R"(
stream FAST ts=internal
stream SLOW ts=internal
union U in=FAST,SLOW
sink OUT in=U
feed FAST process=poisson rate=50 seed=1
feed SLOW process=poisson rate=0.5 seed=2
fault SLOW kind=stall start=10s duration=10s
run horizon=40s ets=none watchdog=2s buffer_cap=128 overload=shed violations=quarantine
)");
  ASSERT_TRUE(experiment.ok()) << experiment.status();
  ASSERT_EQ(experiment->faults.size(), 1u);
  EXPECT_EQ(experiment->faults[0].source, "SLOW");
  EXPECT_EQ(experiment->faults[0].spec.kind, FaultKind::kStall);
  EXPECT_EQ(experiment->faults[0].spec.start, 10 * kSecond);
  EXPECT_EQ(experiment->run.watchdog, 2 * kSecond);
  EXPECT_EQ(experiment->run.buffer_cap, 128u);
  EXPECT_EQ(experiment->run.overload, OverloadPolicy::kShedOldest);
  EXPECT_EQ(experiment->run.violations, ViolationPolicy::kQuarantine);

  auto report = RunExperiment(&*experiment);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->fault_events, 0u);
  EXPECT_GT(report->watchdog_ets, 0u);
  EXPECT_TRUE(report->degraded);
  EXPECT_LE(report->max_buffer_hwm, 128u);
  EXPECT_NE(report->robustness.find("degraded source 'SLOW'"),
            std::string::npos);
}

TEST(ExperimentSpecTest, ErrorFaultOnUnknownStream) {
  auto experiment = ParseExperiment(R"(
stream A ts=internal
sink OUT in=A
feed A process=constant rate=5
fault NOPE kind=stall
)");
  EXPECT_FALSE(experiment.ok());
}

TEST(ExperimentSpecTest, ErrorBadFaultKind) {
  auto experiment = ParseExperiment(R"(
stream A ts=internal
sink OUT in=A
feed A process=constant rate=5
fault A kind=meteor
)");
  EXPECT_FALSE(experiment.ok());
}

TEST(ExperimentSpecTest, ErrorBadOverloadPolicy) {
  auto experiment = ParseExperiment(R"(
stream A ts=internal
sink OUT in=A
feed A process=constant rate=5
run overload=explode
)");
  EXPECT_FALSE(experiment.ok());
}

TEST(ExperimentSpecTest, ErrorFeedOnUnknownStream) {
  auto experiment = ParseExperiment(R"(
stream S ts=internal
sink OUT in=S
feed NOPE process=poisson rate=1
)");
  ASSERT_FALSE(experiment.ok());
  EXPECT_NE(experiment.status().message().find("NOPE"), std::string::npos);
}

TEST(ExperimentSpecTest, ErrorFeedOnNonStream) {
  auto experiment = ParseExperiment(R"(
stream S ts=internal
sink OUT in=S
feed OUT process=poisson rate=1
)");
  ASSERT_FALSE(experiment.ok());
  EXPECT_NE(experiment.status().message().find("stream"), std::string::npos);
}

TEST(ExperimentSpecTest, ErrorNoFeeds) {
  auto experiment = ParseExperiment("stream S\nsink OUT in=S\nrun horizon=1s\n");
  ASSERT_FALSE(experiment.ok());
  EXPECT_NE(experiment.status().message().find("no feeds"),
            std::string::npos);
}

TEST(ExperimentSpecTest, ErrorDuplicateRun) {
  auto experiment = ParseExperiment(R"(
stream S ts=internal
sink OUT in=S
feed S process=poisson rate=1
run horizon=1s
run horizon=2s
)");
  ASSERT_FALSE(experiment.ok());
  EXPECT_NE(experiment.status().message().find("duplicate run"),
            std::string::npos);
}

TEST(ExperimentSpecTest, ErrorBadProcess) {
  auto experiment = ParseExperiment(R"(
stream S ts=internal
sink OUT in=S
feed S process=fractal rate=1
)");
  ASSERT_FALSE(experiment.ok());
  EXPECT_NE(experiment.status().message().find("fractal"), std::string::npos);
}

TEST(ExperimentSpecTest, ErrorBadEtsValue) {
  auto experiment = ParseExperiment(R"(
stream S ts=internal
sink OUT in=S
feed S process=poisson rate=1
run ets=perhaps
)");
  ASSERT_FALSE(experiment.ok());
}

TEST(ExperimentSpecTest, ErrorMissingTraceFile) {
  auto experiment = ParseExperiment(R"(
stream S ts=internal
sink OUT in=S
feed S trace=/no/such/file.txt
)");
  ASSERT_TRUE(experiment.ok()) << experiment.status();  // parse is lazy
  auto report = RunExperiment(&*experiment);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST(ExperimentSpecTest, PlanErrorsPropagateWithLineNumbers) {
  auto experiment = ParseExperiment(R"(
stream S ts=internal
union U in=S
sink OUT in=U
feed S process=poisson rate=1
)");
  ASSERT_FALSE(experiment.ok());  // unary union rejected by plan validation
}

}  // namespace
}  // namespace dsms
