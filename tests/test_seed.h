#ifndef DSMS_TESTS_TEST_SEED_H_
#define DSMS_TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

namespace dsms {
namespace test {

/// Seed for a randomized test: `fallback` unless the DSMS_TEST_SEED
/// environment variable is set, in which case that value wins — so a
/// failure printed by a previous run can be replayed exactly.
inline uint64_t TestSeedOr(uint64_t fallback) {
  const char* env = std::getenv("DSMS_TEST_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

/// Seed sweep for parameterized tests: the declared list normally; just
/// the DSMS_TEST_SEED value when the override is set (single-seed replay).
inline std::vector<uint64_t> TestSeedsOr(std::vector<uint64_t> fallback) {
  const char* env = std::getenv("DSMS_TEST_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return {static_cast<uint64_t>(std::strtoull(env, nullptr, 10))};
}

}  // namespace test
}  // namespace dsms

/// Attaches the seed to every assertion failure in the enclosing scope, so
/// the log always says how to replay: DSMS_TEST_SEED=<seed> ctest ...
#define DSMS_TRACE_SEED(seed)                                         \
  SCOPED_TRACE(::testing::Message()                                   \
               << "seed=" << (seed) << " (replay with DSMS_TEST_SEED=" \
               << (seed) << ")")

#endif  // DSMS_TESTS_TEST_SEED_H_
