// FrontierTracker: the lease/lifecycle unit contract, the tracker-vs-legacy
// watchdog byte-identity oracle (the frontier analogue of the scheduler's
// kScanReference oracle), and the headline chaos scenarios of the frontier
// coordination service — a flapping source absorbed by quarantine and
// re-admission, and a run with three simultaneously misbehaving sources that
// still completes with the frontier advancing.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/time.h"
#include "core/stream_buffer.h"
#include "frontier/frontier_tracker.h"
#include "operators/source.h"
#include "recovery/state_codec.h"
#include "sim/fault_injector.h"
#include "sim/scenario.h"
#include "test_seed.h"

namespace dsms {
namespace {

// --- Lifecycle unit contract -------------------------------------------------

class TrackerLifecycleTest : public ::testing::Test {
 protected:
  TrackerLifecycleTest() : source_("S", /*stream_id=*/7,
                                   TimestampKind::kInternal) {
    tracker_.set_clock(&clock_);
    tracker_.Register(&source_);
  }

  VirtualClock clock_;
  FrontierTracker tracker_;
  Source source_;
};

TEST_F(TrackerLifecycleTest, ViolationsWalkHealthySuspectQuarantined) {
  EXPECT_EQ(tracker_.health(7), SourceHealth::kHealthy);

  // Default hysteresis: 1 strike to suspect, 3 more to quarantine.
  tracker_.ReportViolation(7, FrontierViolation::kPunctuationRegression);
  EXPECT_EQ(tracker_.health(7), SourceHealth::kSuspect);
  tracker_.ReportViolation(7, FrontierViolation::kSkewViolation);
  tracker_.ReportViolation(7, FrontierViolation::kTimestampDisorder);
  EXPECT_EQ(tracker_.health(7), SourceHealth::kSuspect);
  tracker_.ReportViolation(7, FrontierViolation::kFlappingRevival);
  EXPECT_EQ(tracker_.health(7), SourceHealth::kQuarantined);

  EXPECT_EQ(tracker_.violations(), 4u);
  EXPECT_EQ(tracker_.quarantines(), 1u);
  EXPECT_EQ(tracker_.CountInState(SourceHealth::kQuarantined), 1u);
}

TEST_F(TrackerLifecycleTest, CleanWindowsReadmitThenHealWithProbation) {
  LeasePolicy policy;
  policy.readmit_after = 10 * kSecond;
  policy.probation = 10 * kSecond;
  tracker_.set_policy(policy);

  for (int i = 0; i < 4; ++i) {
    tracker_.ReportViolation(7, FrontierViolation::kFlappingRevival);
  }
  ASSERT_EQ(tracker_.health(7), SourceHealth::kQuarantined);

  // One microsecond short of the clean window: still quarantined.
  tracker_.Poll(10 * kSecond - 1);
  EXPECT_EQ(tracker_.health(7), SourceHealth::kQuarantined);
  tracker_.Poll(10 * kSecond);
  EXPECT_EQ(tracker_.health(7), SourceHealth::kReadmitted);
  tracker_.Poll(20 * kSecond - 1);
  EXPECT_EQ(tracker_.health(7), SourceHealth::kReadmitted);
  tracker_.Poll(20 * kSecond);
  EXPECT_EQ(tracker_.health(7), SourceHealth::kHealthy);

  // Hysteresis the other way: a single strike on probation re-quarantines.
  for (int i = 0; i < 4; ++i) {
    tracker_.ReportViolation(7, FrontierViolation::kFlappingRevival);
  }
  ASSERT_EQ(tracker_.health(7), SourceHealth::kQuarantined);
  clock_.AdvanceTo(40 * kSecond);
  tracker_.Poll(clock_.now());
  ASSERT_EQ(tracker_.health(7), SourceHealth::kReadmitted);
  tracker_.ReportViolation(7, FrontierViolation::kPunctuationRegression);
  EXPECT_EQ(tracker_.health(7), SourceHealth::kQuarantined);
  EXPECT_EQ(tracker_.quarantines(), 3u);
}

TEST_F(TrackerLifecycleTest, BenignReportsNeverStrike) {
  for (int i = 0; i < 100; ++i) tracker_.ReportBenign(7);
  EXPECT_EQ(tracker_.health(7), SourceHealth::kHealthy);
  EXPECT_EQ(tracker_.benign_reports(), 100u);
  EXPECT_EQ(tracker_.violations(), 0u);
  EXPECT_EQ(tracker_.transitions(), 0u);
}

TEST_F(TrackerLifecycleTest, RevokeExcludesAndActivityReinstates) {
  ASSERT_NE(tracker_.participant(7), nullptr);
  EXPECT_FALSE(tracker_.participant(7)->revoked);
  tracker_.Revoke(7);
  EXPECT_TRUE(tracker_.participant(7)->revoked);
  tracker_.Revoke(7);  // idempotent
  EXPECT_EQ(tracker_.revocations(), 1u);
  tracker_.NoteConnectionActivity(7);
  EXPECT_FALSE(tracker_.participant(7)->revoked);
}

TEST(TrackerFrontierTest, CheckpointFrontierExcludesUntrustedPromises) {
  VirtualClock clock;
  FrontierTracker tracker;
  tracker.set_clock(&clock);

  Source liar("LIAR", 1, TimestampKind::kInternal);
  Source honest("HONEST", 2, TimestampKind::kInternal);
  StreamBuffer liar_out("liar->x");
  StreamBuffer honest_out("honest->x");
  liar.AddOutput(&liar_out);
  honest.AddOutput(&honest_out);
  tracker.Register(&liar);
  tracker.Register(&honest);

  liar.InjectPunctuation(5 * kSecond);
  honest.InjectPunctuation(9 * kSecond);
  EXPECT_EQ(tracker.CheckpointFrontier(), 5 * kSecond);
  EXPECT_EQ(tracker.GlobalFrontier(), 5 * kSecond);

  // Quarantining the laggard releases the checkpoint frontier to the
  // slowest *trusted* promise...
  for (int i = 0; i < 4; ++i) {
    tracker.ReportViolation(1, FrontierViolation::kPunctuationRegression);
  }
  ASSERT_EQ(tracker.health(1), SourceHealth::kQuarantined);
  EXPECT_EQ(tracker.CheckpointFrontier(), 9 * kSecond);
  // ...while the metrics-facing global frontier still reports the truth.
  EXPECT_EQ(tracker.GlobalFrontier(), 5 * kSecond);

  // With no trusted participant left, fall back to min-over-all rather
  // than inventing a bound from nothing.
  for (int i = 0; i < 4; ++i) {
    tracker.ReportViolation(2, FrontierViolation::kPunctuationRegression);
  }
  EXPECT_EQ(tracker.CheckpointFrontier(), 5 * kSecond);
}

TEST(TrackerStateTest, SaveLoadRoundTripRestoresLifecycle) {
  VirtualClock clock;
  clock.AdvanceTo(42 * kSecond);
  Source source("S", 3, TimestampKind::kInternal);

  FrontierTracker a;
  a.set_clock(&clock);
  a.Register(&source);
  for (int i = 0; i < 4; ++i) {
    a.ReportViolation(3, FrontierViolation::kFlappingRevival);
  }
  a.Revoke(3);
  ASSERT_EQ(a.health(3), SourceHealth::kQuarantined);

  StateWriter w;
  a.SaveState(w);
  std::string blob = w.Take();

  FrontierTracker b;
  b.set_clock(&clock);
  b.Register(&source);
  StateReader r(blob);
  b.LoadState(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);

  // A restart must not re-trust a known liar: the quarantine decision, its
  // timing, and every counter survive the round trip.
  EXPECT_EQ(b.health(3), SourceHealth::kQuarantined);
  ASSERT_NE(b.participant(3), nullptr);
  EXPECT_TRUE(b.participant(3)->revoked);
  EXPECT_EQ(b.participant(3)->violations, 4u);
  EXPECT_EQ(b.participant(3)->last_violation, 42 * kSecond);
  EXPECT_EQ(b.violations(), 4u);
  EXPECT_EQ(b.quarantines(), 1u);
  EXPECT_EQ(b.revocations(), 1u);
  // The restored participant is merged onto the registered source, not a
  // detached shadow entry.
  EXPECT_EQ(b.participant(3)->source, &source);
}

// --- Tracker vs legacy watchdog: the byte-identity oracle --------------------

/// The chaos matrix configuration (tests/chaos_test.cc) with tracing on:
/// every defense armed, one fault injected.
ScenarioConfig OracleConfig(FaultKind kind, int executor, uint64_t seed) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.executor = static_cast<ExecutorKind>(executor);
  config.horizon = 90 * kSecond;
  config.warmup = 0;
  config.seed = seed;
  config.record_trace = true;

  config.fault.kind = kind;
  config.fault.start = 30 * kSecond;
  config.fault.duration = 30 * kSecond;
  config.fault.probability = 0.5;
  const bool punct_fault = kind == FaultKind::kDuplicatePunct ||
                           kind == FaultKind::kRegressingPunct;
  config.fault_target = punct_fault ? 1 : 0;
  if (kind == FaultKind::kSkewViolation) {
    config.ts_kind = TimestampKind::kExternal;
    config.skew_bound = kSecond;
  }
  if (kind == FaultKind::kFlap) config.fault.punct_period = 10 * kSecond;

  config.watchdog_horizon = 5 * kSecond;
  config.buffer_capacity = 256;
  config.overload = OverloadPolicy::kShedOldest;
  config.violations = ViolationPolicy::kQuarantine;
  return config;
}

class FrontierOracleTest
    : public ::testing::TestWithParam<std::tuple<int /*kind*/,
                                                 int /*executor*/>> {};

/// The tracker's lease path must reproduce the legacy watchdog's tuple
/// movement bit for bit — on the healthy path AND under every fault kind.
/// Lifecycle bookkeeping (suspect/quarantine, revivals) may differ between
/// the modes; which tuples move, when, may not.
TEST_P(FrontierOracleTest, TrackerIsTraceIdenticalToLegacyWatchdog) {
  auto [kind_index, executor] = GetParam();
  const FaultKind kind = static_cast<FaultKind>(kind_index);
  const uint64_t seed = test::TestSeedOr(42);
  DSMS_TRACE_SEED(seed);

  ScenarioConfig tracker_config = OracleConfig(kind, executor, seed);
  tracker_config.frontier_mode = FrontierMode::kTracker;
  ScenarioConfig legacy_config = OracleConfig(kind, executor, seed);
  legacy_config.frontier_mode = FrontierMode::kLegacyWatchdog;

  ScenarioResult tracker = RunScenario(tracker_config);
  ScenarioResult legacy = RunScenario(legacy_config);

  EXPECT_EQ(tracker.trace_events, legacy.trace_events);
  EXPECT_EQ(tracker.trace_hash, legacy.trace_hash);
  EXPECT_EQ(tracker.sink_digest, legacy.sink_digest);
  EXPECT_EQ(tracker.tuples_delivered, legacy.tuples_delivered);
  EXPECT_EQ(tracker.watchdog_ets, legacy.watchdog_ets);
  EXPECT_EQ(tracker.degraded, legacy.degraded);
  EXPECT_EQ(tracker.exec.data_steps, legacy.exec.data_steps);
  EXPECT_EQ(tracker.exec.punctuation_steps, legacy.exec.punctuation_steps);
  EXPECT_EQ(tracker.exec.ets_generated, legacy.exec.ets_generated);
  EXPECT_EQ(tracker.exec.backtracks, legacy.exec.backtracks);
}

std::string OracleName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kKinds[] = {"None",     "Stall",    "Death",
                                 "Burst",    "Disorder", "Skew",
                                 "DupPunct", "RegressPunct", "Flap"};
  static const char* kExecutors[] = {"Dfs", "RoundRobin", "Greedy"};
  return std::string(kKinds[std::get<0>(info.param)]) +
         kExecutors[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsAllExecutors, FrontierOracleTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(0, 1, 2)),
    OracleName);

// --- Frontier scenarios ------------------------------------------------------

/// Lease expiry replaces the watchdog: configuring ONLY the frontier lease
/// (no deprecated watchdog knob) ages a stalled source out, unwedges the
/// graph, and surfaces the degradation in the frontier counters.
TEST(FrontierScenarioTest, LeaseExpiryReplacesWatchdog) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kNoEts;
  config.arrivals = ArrivalKind::kConstant;  // deterministic gaps
  config.fast_rate = 50.0;
  config.slow_rate = 1.0;  // 1s gaps: always inside the 5s lease
  config.horizon = 90 * kSecond;
  config.warmup = 0;
  config.fault.kind = FaultKind::kStall;
  config.fault.start = 20 * kSecond;
  config.fault.duration = 40 * kSecond;
  config.fault_target = 1;
  config.watchdog_horizon = 0;        // the deprecated knob stays off
  config.lease.duration = 5 * kSecond;

  ScenarioResult result = RunScenario(config);
  EXPECT_GT(result.watchdog_ets, 0u);
  EXPECT_GT(result.frontier_lease_expiries, 0u);
  EXPECT_TRUE(result.degraded);
  EXPECT_GT(result.tuples_delivered, 0u);
  EXPECT_EQ(result.order_violations, 0u);
  // The stalled stream revived once at the end of its window: absorbed as
  // a single suspect strike, never quarantined.
  EXPECT_GE(result.frontier_revivals, 1u);
  EXPECT_EQ(result.frontier_quarantines, 0u);
}

/// The deprecated watchdog knob aliases onto the lease: old configs keep
/// the exact old behaviour, now accounted under frontier.*.
TEST(FrontierScenarioTest, WatchdogHorizonAliasesToLease) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kNoEts;
  config.arrivals = ArrivalKind::kConstant;  // deterministic gaps
  config.fast_rate = 50.0;
  config.slow_rate = 1.0;
  config.horizon = 90 * kSecond;
  config.warmup = 0;
  config.fault.kind = FaultKind::kDeath;
  config.fault.start = 10 * kSecond;
  config.fault_target = 1;
  config.watchdog_horizon = 5 * kSecond;  // legacy spelling only

  ScenarioResult result = RunScenario(config);
  EXPECT_GT(result.watchdog_ets, 0u);
  EXPECT_GT(result.frontier_lease_expiries, 0u);
  EXPECT_TRUE(result.degraded);
  // Dead is dead: no revival, so no flap violation for an honest death.
  EXPECT_EQ(result.frontier_revivals, 0u);
  EXPECT_EQ(result.frontier_quarantines, 0u);
}

/// The tentpole flap scenario: a producer that repeatedly dies past its
/// lease and revives walks into quarantine (flap damping), is re-admitted
/// after a clean window, and the whole episode never regresses the sink's
/// timestamp order.
TEST(FrontierScenarioTest, FlappingSourceQuarantinedThenReadmitted) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.arrivals = ArrivalKind::kConstant;  // deterministic gaps
  config.fast_rate = 50.0;
  config.slow_rate = 1.0;  // 1s gaps: always inside the 2s lease
  config.horizon = 200 * kSecond;
  config.warmup = 0;
  // Throttle the on-demand ETS path for the whole run: a silent stream
  // must be unwedged by its lease, not papered over by demand-driven
  // punctuation (same trick as the chaos watchdog throttle test).
  config.ets_min_interval = 600 * kSecond;
  config.lease.duration = 2 * kSecond;

  // Dead/alive phases of 5s across [30s, 70s): four die-and-revive cycles,
  // each one a lease expiry followed by a revival violation.
  config.fault.kind = FaultKind::kFlap;
  config.fault.start = 30 * kSecond;
  config.fault.duration = 40 * kSecond;
  config.fault.punct_period = 5 * kSecond;
  config.fault_target = 0;  // the fast stream is the flapper

  ScenarioResult result = RunScenario(config);
  EXPECT_GT(result.tuples_delivered, 0u);
  EXPECT_EQ(result.order_violations, 0u);  // flapping never regresses ETS

  // Four revivals: 1 → suspect, 3 more strikes → quarantined.
  EXPECT_GE(result.frontier_revivals, 4u);
  EXPECT_GE(result.frontier_quarantines, 1u);
  EXPECT_GE(result.frontier_lease_expiries, 4u);
  EXPECT_GT(result.watchdog_ets, 0u);

  // 130 clean virtual seconds after the last flap: re-admitted, probation
  // served, fully healthy again — the hysteresis absorbed the episode.
  EXPECT_EQ(result.frontier_quarantined_now, 0u);
  EXPECT_EQ(result.frontier_degraded_now, 0u);
}

/// Acceptance scenario: one stalled source, one punctuation-regressing
/// source, and one flapping source at the same time. The run completes, the
/// frontier advances, and the misbehaving sources are visible in the
/// frontier counters instead of wedging the graph.
TEST(FrontierScenarioTest, ThreeMisbehavingSourcesDoNotWedgeTheRun) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.arrivals = ArrivalKind::kConstant;
  config.fast_rate = 50.0;
  config.slow_rate = 1.0;
  config.num_slow_streams = 3;  // sources: 0 fast, 1..3 slow
  config.horizon = 200 * kSecond;
  config.warmup = 0;
  config.ets_min_interval = 600 * kSecond;  // the lease does the unwedging
  config.lease.duration = 2 * kSecond;
  config.violations = ViolationPolicy::kQuarantine;

  // Source 1 stalls for 30s.
  config.fault.kind = FaultKind::kStall;
  config.fault.start = 30 * kSecond;
  config.fault.duration = 30 * kSecond;
  config.fault_target = 1;
  // Source 2's heartbeat logic regresses its punctuation every 2s.
  FaultSpec regress;
  regress.kind = FaultKind::kRegressingPunct;
  regress.source = 2;
  regress.start = 30 * kSecond;
  regress.duration = 30 * kSecond;
  regress.punct_period = 2 * kSecond;
  regress.magnitude = 2 * kSecond;
  config.extra_faults.push_back(regress);
  // Source 3 flaps: 5s dead / 5s alive across [30s, 70s).
  FaultSpec flap;
  flap.kind = FaultKind::kFlap;
  flap.source = 3;
  flap.start = 30 * kSecond;
  flap.duration = 40 * kSecond;
  flap.punct_period = 5 * kSecond;
  config.extra_faults.push_back(flap);

  ScenarioResult result = RunScenario(config);

  // Completion under triple fault: data keeps flowing, order holds.
  EXPECT_GT(result.tuples_delivered, 0u);
  EXPECT_EQ(result.order_violations, 0u);
  EXPECT_GT(result.fault_events, 0u);

  // The stalled source was aged out by its lease (degraded, not wedged).
  EXPECT_GT(result.watchdog_ets, 0u);
  EXPECT_TRUE(result.degraded);

  // Both liars walked into quarantine; the honest stall did not.
  EXPECT_GE(result.frontier_quarantines, 2u);
  EXPECT_GE(result.frontier_violations, 5u);
  EXPECT_GE(result.frontier_revivals, 4u);

  // The frontier kept advancing: by the horizon every stream has promised
  // far past the fault windows.
  EXPECT_GT(result.frontier_bound, 100 * kSecond);
}

}  // namespace
}  // namespace dsms
