// Loopback chaos tests: every wire-fault kind the NetFaultInjector can
// produce is driven against a real IngestServer on 127.0.0.1, and the
// headline assertion is always the same — the server stays up, connections
// that behave keep flowing, and for semantics-preserving faults the output
// is byte-identical to a fault-free run. Kinds that kill the connection
// (rst, reconnect-storm, dup-hello, garbage) run against a WAL-backed
// server and assert exactly-once replay through the HELLO/RESUME handshake.
//
// The second half exercises the ingest-plane hardening directly: admission
// control (kReject with a reason), the global memory budget, outbox/decode
// fail-stop caps, the handshake deadline, the slow-peer degradation ladder
// (shed -> frontier quarantine -> close), short-write regression paths, the
// whole-frame write timeout, and multi-address failover.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/clock.h"
#include "core/tuple.h"
#include "exec/dfs_executor.h"
#include "frontier/frontier_tracker.h"
#include "graph/query_graph.h"
#include "net/feed_client.h"
#include "net/feed_schedule.h"
#include "net/ingest_server.h"
#include "net/net_fault.h"
#include "net/wire_format.h"
#include "obs/metrics_registry.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "recovery/recovery_manager.h"
#include "sim/experiment_spec.h"

namespace dsms {
namespace {

using ::testing::HasSubstr;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/dsms_chaos_" + tag;
  std::string cleanup = "rm -rf '" + dir + "'";
  DSMS_CHECK(std::system(cleanup.c_str()) == 0);
  return dir;
}

int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DSMS_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  DSMS_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0);
  return fd;
}

// Blocking read of one complete frame off a raw socket (3s guard) — how the
// admission tests observe the server's kReject reply.
Result<WireFrame> ReadControlFrame(int fd) {
  timeval tv{};
  tv.tv_sec = 3;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  FrameDecoder decoder;
  char buf[512];
  for (;;) {
    WireFrame frame;
    Result<bool> got = decoder.Next(&frame);
    if (!got.ok()) return got.status();
    if (*got) return frame;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return InternalError("peer closed before a frame arrived");
    decoder.Feed(buf, static_cast<size_t>(n));
  }
}

void ExpectSameTuples(const std::vector<Tuple>& want,
                      const std::vector<Tuple>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(want[i].kind(), got[i].kind());
    ASSERT_EQ(want[i].has_timestamp(), got[i].has_timestamp());
    if (want[i].has_timestamp()) {
      EXPECT_EQ(want[i].timestamp(), got[i].timestamp());
    }
    ASSERT_EQ(want[i].num_values(), got[i].num_values());
    for (int v = 0; v < want[i].num_values(); ++v) {
      EXPECT_EQ(want[i].values()[v], got[i].values()[v]) << "value " << v;
    }
  }
}

// Mixed internal/external plan with a heartbeat and a lossy filter: enough
// structure that delivery order, punctuation, and RNG positions all have to
// survive the chaos for outputs to line up.
constexpr char kChaosPlan[] = R"(
stream A ts=internal
stream B ts=external skew=40ms
filter F in=A selectivity=0.8 seed=5
union U in=F,B
sink OUT in=U
feed A process=poisson rate=50 seed=21
feed B process=poisson rate=30 seed=22
heartbeat B period=250ms
run horizon=2s ets=on-demand
)";

std::vector<ScheduledFrame> BuildScheduleFor(const std::string& text) {
  Result<Experiment> experiment = ParseExperiment(text);
  DSMS_CHECK(experiment.ok());
  Result<std::vector<ScheduledFrame>> schedule =
      BuildFeedSchedule(*experiment, experiment->run.horizon);
  DSMS_CHECK(schedule.ok());
  return *std::move(schedule);
}

// The streamets_serve engine stack without recovery, with an options hook so
// each test can arm the hardening knob it exercises.
struct ChaosHarness {
  explicit ChaosHarness(
      const std::string& text,
      IngestClock::Mode mode = IngestClock::Mode::kFrameDriven,
      std::function<void(IngestServerOptions*)> patch = {}) {
    Result<Experiment> parsed = ParseExperiment(text, /*require_feeds=*/false);
    DSMS_CHECK(parsed.ok());
    experiment = std::make_unique<Experiment>(std::move(*parsed));
    graph = experiment->plan.graph.get();
    for (Sink* sink : graph->sinks()) sink->set_collect(true);

    ExecConfig config;
    config.ets.mode = experiment->run.ets;
    config.ets.min_interval = experiment->run.ets_min_interval;
    config.watchdog.silence_horizon = experiment->run.watchdog;
    if (experiment->run.buffer_cap > 0) {
      graph->SetBufferBound(experiment->run.buffer_cap,
                            experiment->run.overload);
    }
    executor = std::make_unique<DfsExecutor>(graph, &clock, config);

    IngestServerOptions options;
    options.clock_mode = mode;
    options.horizon = experiment->run.horizon;
    options.wall_limit = 60 * kSecond;  // hang guard
    if (patch) patch(&options);
    server = std::make_unique<IngestServer>(graph, executor.get(), &clock,
                                            options);
    server->set_violation_policy(experiment->run.violations);
  }

  void Serve() {
    DSMS_CHECK(server->Start().ok());
    thread = std::thread([this] { run_status = server->Run(); });
  }
  Status Join() {
    if (!thread.joinable()) return InternalError("server never started");
    thread.join();
    return run_status;
  }

  Sink* sink() { return graph->sinks().front(); }

  std::unique_ptr<Experiment> experiment;
  QueryGraph* graph = nullptr;
  VirtualClock clock;
  std::unique_ptr<Executor> executor;
  std::unique_ptr<IngestServer> server;
  std::thread thread;
  Status run_status;
};

// Fault-free reference: the same plan replayed by an honest FeedClient.
std::vector<Tuple> CleanCollected(const std::string& text) {
  ChaosHarness harness(text);
  const std::vector<ScheduledFrame> schedule = BuildScheduleFor(text);
  harness.Serve();
  FeedClientOptions copts;
  copts.port = harness.server->port();
  FeedClient client(copts);
  DSMS_CHECK(client.Connect().ok());
  Result<uint64_t> sent = client.Send(schedule);
  DSMS_CHECK(sent.ok());
  client.Close();
  DSMS_CHECK(harness.Join().ok());
  return harness.sink()->collected();
}

// The recovery-enabled stack (WAL + checkpoints), in streamets_serve's phase
// order — the chaos kinds that kill the connection resume through this.
struct WalHarness {
  WalHarness(const std::string& text, const std::string& dir,
             std::function<void(IngestServerOptions*)> patch = {}) {
    Result<Experiment> parsed = ParseExperiment(text, /*require_feeds=*/false);
    DSMS_CHECK(parsed.ok());
    experiment = std::make_unique<Experiment>(std::move(*parsed));
    graph = experiment->plan.graph.get();

    RecoveryOptions ropts;
    ropts.dir = dir;
    ropts.wal = true;
    ropts.sync = WalSyncPolicy::kEveryFrame;
    ropts.checkpoint = true;
    ropts.checkpoint_horizon = 250 * kMillisecond;
    recovery = std::make_unique<RecoveryManager>(ropts);
    DSMS_CHECK(recovery->Open().ok());
    recovery->RestoreGraph(graph, &clock);

    ExecConfig config;
    config.ets.mode = experiment->run.ets;
    config.ets.min_interval = experiment->run.ets_min_interval;
    config.watchdog.silence_horizon = experiment->run.watchdog;
    executor = std::make_unique<DfsExecutor>(graph, &clock, config);
    recovery->RestoreExecutor(executor.get());
    DSMS_CHECK(recovery->AttachSinks(graph).ok());

    IngestServerOptions options;
    options.clock_mode = IngestClock::Mode::kFrameDriven;
    options.horizon = experiment->run.horizon;
    options.wall_limit = 60 * kSecond;
    if (patch) patch(&options);
    server = std::make_unique<IngestServer>(graph, executor.get(), &clock,
                                            options);
    server->set_violation_policy(experiment->run.violations);
    server->AttachRecovery(recovery.get());
    if (!recovery->recovered_net_blob().empty()) {
      DSMS_CHECK(server->RestoreNetState(recovery->recovered_net_blob()).ok());
    }
  }

  void Serve() {
    DSMS_CHECK(server->Start().ok());
    if (recovery->recovered()) {
      DSMS_CHECK(server->ReplayRecoveredWal().ok());
    }
    thread = std::thread([this] { run_status = server->Run(); });
  }
  Status Join() {
    if (!thread.joinable()) return InternalError("server never started");
    thread.join();
    return run_status;
  }

  std::unique_ptr<Experiment> experiment;
  QueryGraph* graph = nullptr;
  VirtualClock clock;
  std::unique_ptr<RecoveryManager> recovery;
  std::unique_ptr<Executor> executor;
  std::unique_ptr<IngestServer> server;
  std::thread thread;
  Status run_status;
};

// Fault-free reference through the WAL stack: durable sink bytes.
std::string WalReferenceSink(const std::string& dir) {
  const std::vector<ScheduledFrame> schedule = BuildScheduleFor(kChaosPlan);
  WalHarness harness(kChaosPlan, dir);
  harness.Serve();
  FeedClientOptions copts;
  copts.port = harness.server->port();
  copts.resume = true;
  FeedClient client(copts);
  DSMS_CHECK(client.Connect().ok());
  DSMS_CHECK(client.Handshake().ok());
  Result<uint64_t> sent = client.Send(schedule);
  DSMS_CHECK(sent.ok());
  client.Close();
  DSMS_CHECK(harness.Join().ok());
  DSMS_CHECK(harness.recovery->FlushSinks().ok());
  std::string sink = ReadFile(dir + "/sink-OUT.out");
  DSMS_CHECK(!sink.empty());
  return sink;
}

// One chaotic feed through a WAL server; `inspect` sees the harness after a
// clean Join + sink flush.
ChaosFeedReport RunWalChaos(
    const std::string& dir, const NetFaultSpec& spec,
    const std::function<void(WalHarness&)>& inspect = {}) {
  const std::vector<ScheduledFrame> schedule = BuildScheduleFor(kChaosPlan);
  WalHarness harness(kChaosPlan, dir);
  harness.Serve();
  FeedClientOptions copts;
  copts.port = harness.server->port();
  copts.resume = true;
  copts.max_retries = 3;
  copts.backoff_base = 20 * kMillisecond;
  copts.backoff_max = 100 * kMillisecond;
  ChaosFeeder feeder(copts, spec, /*run_seed=*/0);
  Result<ChaosFeedReport> report = feeder.Run(schedule);
  DSMS_CHECK(report.ok());
  DSMS_CHECK(harness.Join().ok());
  DSMS_CHECK(harness.recovery->FlushSinks().ok());
  if (inspect) inspect(harness);
  return *std::move(report);
}

// --- semantics-preserving kinds: byte-identity without a WAL --------------

TEST(NetChaosLoopbackTest, SplitReplayIsByteIdenticalAndDeterministic) {
  const std::vector<Tuple> reference = CleanCollected(kChaosPlan);
  ASSERT_GT(reference.size(), 0u);
  const std::vector<ScheduledFrame> schedule = BuildScheduleFor(kChaosPlan);

  NetFaultSpec spec;
  spec.kind = NetFaultKind::kSplit;
  spec.seed = 7;
  spec.count = 5;

  auto chaos_run = [&](std::vector<Tuple>* collected) {
    ChaosHarness harness(kChaosPlan);
    harness.Serve();
    FeedClientOptions copts;
    copts.port = harness.server->port();
    ChaosFeeder feeder(copts, spec, /*run_seed=*/3);
    Result<ChaosFeedReport> report = feeder.Run(schedule);
    DSMS_CHECK(report.ok());
    DSMS_CHECK(harness.Join().ok());
    EXPECT_EQ(harness.server->decode_errors(), 0u);
    EXPECT_EQ(harness.server->frames_ingested(), schedule.size());
    *collected = harness.sink()->collected();
    return *std::move(report);
  };

  std::vector<Tuple> first_out, second_out;
  ChaosFeedReport first = chaos_run(&first_out);
  ChaosFeedReport second = chaos_run(&second_out);

  EXPECT_EQ(first.split_frames, 5);
  // Determinism: same (spec, run_seed, schedule) -> byte-identical fault
  // timeline and identical sink output across two full live runs.
  EXPECT_EQ(first.timeline, second.timeline);
  EXPECT_EQ(first.split_frames, second.split_frames);
  ExpectSameTuples(first_out, second_out);
  // Byte-identity vs the fault-free run: splitting writes is invisible to a
  // correct decoder.
  ExpectSameTuples(reference, first_out);
}

TEST(NetChaosLoopbackTest, CoalescedWritesPreserveOutput) {
  const std::vector<Tuple> reference = CleanCollected(kChaosPlan);
  const std::vector<ScheduledFrame> schedule = BuildScheduleFor(kChaosPlan);

  NetFaultSpec spec;
  spec.kind = NetFaultKind::kCoalesce;
  spec.seed = 11;
  spec.count = 4;

  ChaosHarness harness(kChaosPlan);
  harness.Serve();
  FeedClientOptions copts;
  copts.port = harness.server->port();
  ChaosFeeder feeder(copts, spec, /*run_seed=*/1);
  Result<ChaosFeedReport> report = feeder.Run(schedule);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(harness.Join().ok());

  EXPECT_GE(report->coalesced_writes, 1);
  EXPECT_EQ(harness.server->decode_errors(), 0u);
  EXPECT_EQ(harness.server->frames_ingested(), schedule.size());
  ExpectSameTuples(reference, harness.sink()->collected());
}

TEST(NetChaosLoopbackTest, SlowlorisDripPreservesOutput) {
  const std::vector<Tuple> reference = CleanCollected(kChaosPlan);
  const std::vector<ScheduledFrame> schedule = BuildScheduleFor(kChaosPlan);

  NetFaultSpec spec;
  spec.kind = NetFaultKind::kSlowloris;
  spec.seed = 13;
  spec.count = 2;  // each drip sleeps per chunk; keep the wall cost small
  spec.chunk = 7;
  spec.gap = kMillisecond;

  ChaosHarness harness(kChaosPlan);
  harness.Serve();
  FeedClientOptions copts;
  copts.port = harness.server->port();
  ChaosFeeder feeder(copts, spec, /*run_seed=*/1);
  Result<ChaosFeedReport> report = feeder.Run(schedule);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(harness.Join().ok());

  EXPECT_EQ(report->slow_dripped_frames, 2);
  EXPECT_EQ(harness.server->decode_errors(), 0u);
  ExpectSameTuples(reference, harness.sink()->collected());
}

TEST(NetChaosLoopbackTest, ChaosProxySplitKeepsServerOutputIdentical) {
  const std::vector<Tuple> reference = CleanCollected(kChaosPlan);
  const std::vector<ScheduledFrame> schedule = BuildScheduleFor(kChaosPlan);

  ChaosHarness harness(kChaosPlan);
  harness.Serve();

  NetFaultSpec spec;
  spec.kind = NetFaultKind::kSplit;
  spec.seed = 17;
  spec.count = 8;
  spec.bytes = 512;  // a fault every 512 forwarded bytes
  ChaosProxy proxy("127.0.0.1", harness.server->port(), spec, /*run_seed=*/2);
  ASSERT_TRUE(proxy.Start().ok());

  FeedClientOptions copts;
  copts.port = proxy.port();
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  Result<uint64_t> sent = client.Send(schedule);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, schedule.size());
  client.Close();
  ASSERT_TRUE(harness.Join().ok());
  proxy.Stop();

  EXPECT_EQ(proxy.connections_accepted(), 1u);
  EXPECT_GT(proxy.bytes_forwarded(), 0u);
  EXPECT_GT(proxy.faults_injected(), 0u);
  EXPECT_EQ(harness.server->decode_errors(), 0u);
  ExpectSameTuples(reference, harness.sink()->collected());
}

// --- handshake deadline & half-open peers ---------------------------------

TEST(NetChaosLoopbackTest, HalfOpenPeersAreReapedByTheHandshakeDeadline) {
  const std::vector<Tuple> reference = CleanCollected(kChaosPlan);
  const std::vector<ScheduledFrame> schedule = BuildScheduleFor(kChaosPlan);

  ChaosHarness harness(kChaosPlan, IngestClock::Mode::kFrameDriven,
                       [](IngestServerOptions* o) {
                         o->handshake_deadline = 50 * kMillisecond;
                       });
  harness.Serve();

  NetFaultSpec spec;
  spec.kind = NetFaultKind::kHalfOpen;
  spec.seed = 19;
  spec.count = 3;
  FeedClientOptions copts;
  copts.port = harness.server->port();
  // Pace the replay (1 wall second per 4 virtual) so the parked half-open
  // sockets are still open when the server's virtual handshake deadline
  // catches up with them mid-feed.
  copts.pace = 0.25;
  ChaosFeeder feeder(copts, spec, /*run_seed=*/4);
  Result<ChaosFeedReport> report = feeder.Run(schedule);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(harness.Join().ok());

  EXPECT_EQ(report->half_open_peers, 3);
  EXPECT_EQ(harness.server->handshake_timeouts(), 3u);
  int reaped = 0;
  for (const ConnectionReport& r : harness.server->connection_reports()) {
    if (r.handshake_timed_out) {
      ++reaped;
      EXPECT_FALSE(r.open);
      EXPECT_EQ(r.frames, 0u);  // never sent a byte, let alone a frame
    }
  }
  EXPECT_EQ(reaped, 3);
  // The mute peers never disturbed the data connection.
  EXPECT_EQ(harness.server->decode_errors(), 0u);
  ExpectSameTuples(reference, harness.sink()->collected());

  MetricsRegistry registry;
  harness.server->PublishTo(&registry);
  EXPECT_EQ(registry.GetCounter("net.handshake_timeouts")->value(), 3u);
}

// --- slow-peer degradation ladder -----------------------------------------

TEST(NetChaosLoopbackTest, SlowPeerClimbsTheDegradationLadder) {
  // Wall-clock mode: byte-rate windows are real time here, so an honest
  // paced feeder stays above the floor in every window while a peer that
  // sends one frame and goes mute starves window after window.
  constexpr char kLadderPlan[] = R"(
stream FAST ts=internal
stream SLOW ts=internal
union U in=FAST,SLOW
sink OUT in=U
feed FAST process=constant rate=100
run horizon=1s ets=on-demand
)";
  ChaosHarness harness(kLadderPlan, IngestClock::Mode::kWallClock,
                       [](IngestServerOptions* o) {
                         o->min_bytes_per_second = 200;
                         o->slow_peer_window = 100 * kMillisecond;
                       });
  const std::vector<ScheduledFrame> schedule = BuildScheduleFor(kLadderPlan);
  harness.Serve();

  // The mute peer: one healthy frame on SLOW (so the stream is attributed
  // to this connection), then silence.
  FeedClientOptions slow_opts;
  slow_opts.port = harness.server->port();
  FeedClient slow_peer(slow_opts);
  ASSERT_TRUE(slow_peer.Connect().ok());
  WireFrame warmup;
  warmup.stream_id = 1;  // SLOW
  warmup.values.emplace_back(std::string("warmup-payload-for-one-window"));
  ASSERT_TRUE(slow_peer.SendFrame(warmup).ok());

  // The honest peer: paced in real time, ~290 bytes per 100ms window.
  FeedClientOptions fast_opts;
  fast_opts.port = harness.server->port();
  fast_opts.pace = 1.0;
  FeedClient fast_peer(fast_opts);
  ASSERT_TRUE(fast_peer.Connect().ok());
  Result<uint64_t> sent = fast_peer.Send(schedule);
  ASSERT_TRUE(sent.ok());
  fast_peer.Close();
  ASSERT_TRUE(harness.Join().ok());
  slow_peer.Close();

  // The ladder ran its full course: shed, then quarantine, then close.
  EXPECT_GE(harness.server->slow_peer_sheds(), 1u);
  EXPECT_GE(harness.server->slow_peer_quarantines(), 1u);
  EXPECT_EQ(harness.server->slow_peer_closes(), 1u);
  int degraded = 0;
  for (const ConnectionReport& r : harness.server->connection_reports()) {
    if (r.slow_strikes > 0) {
      ++degraded;
      EXPECT_GE(r.slow_strikes, 3u);
      EXPECT_EQ(r.degradation, 3);
      EXPECT_FALSE(r.open);
    }
  }
  EXPECT_EQ(degraded, 1);  // the honest peer never struck

  // The misbehaviour reached the frontier's quarantine lifecycle: SLOW's
  // promise was reported and revoked, FAST stayed trusted.
  const FrontierTracker* frontier = harness.executor->frontier();
  EXPECT_GE(frontier->violations(), 1u);
  EXPECT_NE(frontier->health(1), SourceHealth::kHealthy);
  EXPECT_EQ(frontier->health(0), SourceHealth::kHealthy);

  MetricsRegistry registry;
  harness.server->PublishTo(&registry);
  harness.executor->frontier()->PublishTo(&registry, "frontier");
  EXPECT_GE(registry.GetCounter("net.slow_peer_sheds")->value(), 1u);
  EXPECT_GE(registry.GetCounter("net.slow_peer_quarantines")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("net.slow_peer_closes")->value(), 1u);
  EXPECT_GE(registry.GetCounter("frontier.violations")->value(), 1u);
}

// --- connection-killing kinds: exactly-once through HELLO/RESUME ----------

TEST(NetChaosLoopbackTest, RstMidFrameReplaysExactlyOnce) {
  const std::string reference = WalReferenceSink(FreshDir("rst_ref"));

  NetFaultSpec spec;
  spec.kind = NetFaultKind::kRstMidFrame;
  spec.seed = 23;
  spec.count = 3;
  const std::string dir = FreshDir("rst");
  uint64_t ingested = 0;
  ChaosFeedReport report = RunWalChaos(dir, spec, [&](WalHarness& h) {
    ingested = h.server->frames_ingested();
  });

  EXPECT_EQ(report.rst_aborts, 3);
  EXPECT_EQ(report.reconnects, 3);
  // Exactly-once: every schedule frame was delivered exactly once despite
  // three mid-frame resets — the truncated copies never decoded, and the
  // resume handshake skipped everything already durable.
  EXPECT_EQ(ingested, BuildScheduleFor(kChaosPlan).size());
  EXPECT_EQ(ReadFile(dir + "/sink-OUT.out"), reference);
}

TEST(NetChaosLoopbackTest, ReconnectStormWithStaleTokensReplaysExactlyOnce) {
  const std::string reference = WalReferenceSink(FreshDir("storm_ref"));

  NetFaultSpec spec;
  spec.kind = NetFaultKind::kReconnectStorm;
  spec.seed = 29;
  spec.count = 3;  // >= 3 chaotic reconnects, per the acceptance bar
  spec.stale = 2;  // each cycle replays two stale resume tokens first
  const std::string dir = FreshDir("storm");
  uint64_t resume_rejects = 0;
  uint64_t quarantines = 0;
  size_t quarantined_streams = 0;
  ChaosFeedReport report = RunWalChaos(dir, spec, [&](WalHarness& h) {
    resume_rejects = h.server->resume_rejects();
    quarantines = h.executor->frontier()->quarantines();
    quarantined_streams =
        h.executor->frontier()->CountInState(SourceHealth::kQuarantined);
    MetricsRegistry registry;
    h.server->PublishTo(&registry);
    h.executor->frontier()->PublishTo(&registry, "frontier");
    EXPECT_EQ(registry.GetCounter("recovery.resume_rejects")->value(), 6u);
    EXPECT_GE(registry.GetCounter("frontier.quarantines")->value(), 1u);
  });

  EXPECT_EQ(report.reconnects, 3);
  EXPECT_EQ(report.stale_rejects, 6);
  EXPECT_EQ(resume_rejects, 6u);
  // A storm of stale tokens is wire-level evidence: the frontier tracker
  // pushed the implicated streams through the quarantine lifecycle.
  EXPECT_GE(quarantines, 1u);
  EXPECT_GE(quarantined_streams, 1u);
  // Quarantine gates checkpoint-frontier trust, never delivery: output is
  // still byte-identical.
  EXPECT_EQ(ReadFile(dir + "/sink-OUT.out"), reference);
}

TEST(NetChaosLoopbackTest, DuplicateHelloIsAProtocolErrorNotACrash) {
  const std::string reference = WalReferenceSink(FreshDir("dup_ref"));

  NetFaultSpec spec;
  spec.kind = NetFaultKind::kDuplicateHello;
  spec.seed = 31;
  spec.count = 2;
  const std::string dir = FreshDir("dup");
  int offender_conns = 0;
  ChaosFeedReport report = RunWalChaos(dir, spec, [&](WalHarness& h) {
    for (const ConnectionReport& r : h.server->connection_reports()) {
      if (r.protocol_errors > 0) {
        ++offender_conns;
        EXPECT_FALSE(r.open);  // closed on the spot, fail-stop
      }
    }
  });

  EXPECT_EQ(report.duplicate_hellos, 2);
  EXPECT_EQ(report.reconnects, 2);
  EXPECT_EQ(offender_conns, 2);
  EXPECT_EQ(ReadFile(dir + "/sink-OUT.out"), reference);
}

TEST(NetChaosLoopbackTest, GarbageAfterResumePoisonsOnlyTheFaultedConnection) {
  const std::string reference = WalReferenceSink(FreshDir("garbage_ref"));

  NetFaultSpec spec;
  spec.kind = NetFaultKind::kGarbage;
  spec.seed = 37;
  spec.count = 2;
  spec.bytes = 48;
  const std::string dir = FreshDir("garbage");
  uint64_t decode_errors = 0;
  int poisoned_conns = 0;
  ChaosFeedReport report = RunWalChaos(dir, spec, [&](WalHarness& h) {
    decode_errors = h.server->decode_errors();
    for (const ConnectionReport& r : h.server->connection_reports()) {
      if (r.decode_errors > 0) {
        ++poisoned_conns;
        EXPECT_FALSE(r.open);
      }
    }
  });

  EXPECT_EQ(report.garbage_injections, 2);
  // Sticky poisoning is per connection: exactly the two garbage-fed sockets
  // died with a decode error; their replacements (and the sink bytes)
  // stayed clean.
  EXPECT_GE(decode_errors, 2u);
  EXPECT_EQ(poisoned_conns, 2);
  EXPECT_EQ(ReadFile(dir + "/sink-OUT.out"), reference);
}

// --- admission control & resource caps ------------------------------------

constexpr char kTinyPlan[] = R"(
stream A ts=internal
sink OUT in=A
run horizon=500ms
)";

TEST(NetChaosLoopbackTest, AdmissionControlRejectsWithReason) {
  ChaosHarness harness(kTinyPlan, IngestClock::Mode::kWallClock,
                       [](IngestServerOptions* o) { o->max_connections = 1; });
  harness.Serve();

  int first = RawConnect(harness.server->port());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  int second = RawConnect(harness.server->port());
  Result<WireFrame> reject = ReadControlFrame(second);
  ASSERT_TRUE(reject.ok()) << reject.status().ToString();
  EXPECT_EQ(reject->type, WireFrame::Type::kReject);
  ASSERT_EQ(reject->values.size(), 1u);
  EXPECT_THAT(reject->values[0].string_value(), HasSubstr("connection limit"));
  ::close(second);
  ::close(first);
  ASSERT_TRUE(harness.Join().ok());
  EXPECT_EQ(harness.server->admission_rejects(), 1u);
}

TEST(NetChaosLoopbackTest, MemoryBudgetRejectsNewPeersUnderPressure) {
  ChaosHarness harness(kTinyPlan, IngestClock::Mode::kWallClock,
                       [](IngestServerOptions* o) {
                         o->ingest_memory_budget = 1024;
                       });
  harness.Serve();

  // Pin ~2KB in the first connection's decode buffer: a length prefix
  // promising a 60000-byte frame, then only 2000 bytes of it.
  int first = RawConnect(harness.server->port());
  std::string partial;
  const uint32_t claimed = 60000;
  partial.append(reinterpret_cast<const char*>(&claimed), sizeof(claimed));
  partial.append(2000, '\0');
  ASSERT_EQ(::send(first, partial.data(), partial.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(partial.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  int second = RawConnect(harness.server->port());
  Result<WireFrame> reject = ReadControlFrame(second);
  ASSERT_TRUE(reject.ok()) << reject.status().ToString();
  EXPECT_EQ(reject->type, WireFrame::Type::kReject);
  ASSERT_EQ(reject->values.size(), 1u);
  EXPECT_THAT(reject->values[0].string_value(), HasSubstr("memory budget"));
  ::close(second);
  ::close(first);
  ASSERT_TRUE(harness.Join().ok());
  EXPECT_EQ(harness.server->admission_rejects(), 1u);

  MetricsRegistry registry;
  harness.server->PublishTo(&registry);
  EXPECT_EQ(registry.GetCounter("net.admission_rejects")->value(), 1u);
}

TEST(NetChaosLoopbackTest, OutboxCapFailStopsAHalfOpenReader) {
  ChaosHarness harness(kTinyPlan, IngestClock::Mode::kWallClock,
                       [](IngestServerOptions* o) {
                         // Smaller than even the empty resume-state reply:
                         // the first HELLO answer overruns immediately.
                         o->max_outbox_bytes = 8;
                       });
  harness.Serve();

  int fd = RawConnect(harness.server->port());
  WireFrame hello;
  hello.type = WireFrame::Type::kHello;
  std::string bytes;
  ASSERT_TRUE(EncodeFrame(hello, &bytes).ok());
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  // The server must close us (fail-stop), not buffer toward a mute reader.
  char buf[64];
  timeval tv{};
  tv.tv_sec = 3;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  ::close(fd);
  ASSERT_TRUE(harness.Join().ok());

  EXPECT_EQ(harness.server->overrun_closes(), 1u);
  bool overrun_seen = false;
  for (const ConnectionReport& r : harness.server->connection_reports()) {
    if (r.overrun_closed) {
      overrun_seen = true;
      EXPECT_FALSE(r.open);
    }
  }
  EXPECT_TRUE(overrun_seen);
}

// --- short writes, write timeout, failover (EINTR/EAGAIN/EPIPE audit) -----

TEST(NetChaosLoopbackTest, ShortWritesDripTheHandshakeReply) {
  // max_write_bytes=1 forces the server through the partial-write resume
  // path (queued outbox remainder + POLLOUT) on every single byte of the
  // resume-state reply; the handshake must still complete.
  ChaosHarness harness(kChaosPlan, IngestClock::Mode::kFrameDriven,
                       [](IngestServerOptions* o) { o->max_write_bytes = 1; });
  const std::vector<ScheduledFrame> schedule = BuildScheduleFor(kChaosPlan);
  harness.Serve();

  FeedClientOptions copts;
  copts.port = harness.server->port();
  copts.resume = true;
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Handshake().ok());
  EXPECT_TRUE(client.acked().empty());  // no WAL: nothing durable
  Result<uint64_t> sent = client.Send(schedule);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, schedule.size());
  client.Close();
  ASSERT_TRUE(harness.Join().ok());
  EXPECT_EQ(harness.server->frames_ingested(), schedule.size());
  EXPECT_EQ(harness.server->decode_errors(), 0u);
}

TEST(NetChaosLoopbackTest, SlowReaderTripsTheWholeFrameWriteTimeout) {
  // A hand-rolled slow reader: tiny receive buffer, drains ~2KB every 20ms.
  // Individual sends keep succeeding, so only a deadline that spans ALL
  // partial sends of the frame can catch the stall.
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  int rcvbuf = 4096;
  ::setsockopt(listener, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);

  std::atomic<bool> stop{false};
  std::thread reader([listener, &stop] {
    int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) return;
    char buf[2048];
    while (!stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n == 0) break;
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) break;
    }
    ::close(fd);
  });

  FeedClientOptions copts;
  copts.port = ntohs(addr.sin_port);
  copts.write_timeout = 200 * kMillisecond;
  // Without the cap TCP autotuning grows SO_SNDBUF into the megabytes and
  // the whole frame "succeeds" into kernel memory without a single stall.
  copts.send_buffer_bytes = 16 * 1024;
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  WireFrame big;
  big.stream_id = 0;
  big.values.emplace_back(std::string(900 * 1024, 'x'));
  Status sent = client.SendFrame(big);
  EXPECT_EQ(sent.code(), StatusCode::kDeadlineExceeded) << sent.ToString();
  client.Close();
  stop = true;
  reader.join();
  ::close(listener);
}

TEST(NetChaosLoopbackTest, FailoverDialsTheFallbackAddress) {
  // A port with nothing listening: bind an ephemeral port, note it, close.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  ChaosHarness harness(kChaosPlan);
  const std::vector<ScheduledFrame> schedule = BuildScheduleFor(kChaosPlan);
  harness.Serve();

  FeedClientOptions copts;
  copts.port = dead_port;  // primary refuses
  copts.fallback_addresses.push_back(
      "127.0.0.1:" + std::to_string(harness.server->port()));
  copts.max_retries = 2;
  copts.backoff_base = 10 * kMillisecond;
  copts.backoff_max = 50 * kMillisecond;
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  Result<uint64_t> sent = client.Send(schedule);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, schedule.size());
  client.Close();
  ASSERT_TRUE(harness.Join().ok());
  EXPECT_EQ(harness.server->frames_ingested(), schedule.size());
}

}  // namespace
}  // namespace dsms
