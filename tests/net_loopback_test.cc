// Loopback integration tests for the network ingestion subsystem: a real
// IngestServer on 127.0.0.1 fed by a real FeedClient over TCP.
//
// The headline test is output equivalence: the same seeded experiment file
// produces bit-identical sink output whether its feeds run through the
// discrete-event Simulation or are replayed over a socket into a
// frame-driven server. The rest exercise the defenses that only matter on
// a network: watchdog ETS for a feeder that dies mid-run, skew-contract
// violations routed to the ViolationPolicy, load shedding under
// backpressure, and garbage bytes closing one connection without taking
// down the server.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/clock.h"
#include "core/tuple.h"
#include "exec/dfs_executor.h"
#include "graph/query_graph.h"
#include "net/feed_client.h"
#include "net/feed_schedule.h"
#include "net/ingest_server.h"
#include "net/wire_format.h"
#include "obs/metrics_registry.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "sim/experiment_spec.h"

namespace dsms {
namespace {

// Parses `text` and assembles the same engine stack streamets_serve builds:
// clock, DFS executor configured from the run statement, collecting sinks,
// and an IngestServer ready to Start().
struct ServerHarness {
  explicit ServerHarness(const std::string& text,
                         IngestClock::Mode mode = IngestClock::Mode::kFrameDriven,
                         Duration idle_timeout = 0) {
    Result<Experiment> parsed =
        ParseExperiment(text, /*require_feeds=*/false);
    DSMS_CHECK(parsed.ok());
    experiment = std::make_unique<Experiment>(std::move(*parsed));
    graph = experiment->plan.graph.get();
    for (Sink* sink : graph->sinks()) sink->set_collect(true);

    ExecConfig config;
    config.ets.mode = experiment->run.ets;
    config.ets.min_interval = experiment->run.ets_min_interval;
    config.watchdog.silence_horizon = experiment->run.watchdog;
    if (experiment->run.buffer_cap > 0) {
      graph->SetBufferBound(experiment->run.buffer_cap,
                            experiment->run.overload);
    }
    executor = std::make_unique<DfsExecutor>(graph, &clock, config);

    IngestServerOptions options;
    options.clock_mode = mode;
    options.horizon = experiment->run.horizon;
    options.wall_limit = 60 * kSecond;  // hang guard; tests finish long before
    options.idle_timeout = idle_timeout;
    server = std::make_unique<IngestServer>(graph, executor.get(), &clock,
                                            options);
    server->set_violation_policy(experiment->run.violations);
  }

  // Starts the server and runs it on a background thread; Join() returns
  // Run's status.
  void Serve() {
    ASSERT_TRUE(server->Start().ok());
    thread = std::thread([this] { run_status = server->Run(); });
  }
  Status Join() {
    if (!thread.joinable()) return InternalError("server never started");
    thread.join();
    return run_status;
  }

  Sink* sink() { return graph->sinks().front(); }

  std::unique_ptr<Experiment> experiment;
  QueryGraph* graph = nullptr;
  VirtualClock clock;
  std::unique_ptr<Executor> executor;
  std::unique_ptr<IngestServer> server;
  std::thread thread;
  Status run_status;
};

void ExpectSameTuples(const std::vector<Tuple>& sim,
                      const std::vector<Tuple>& net) {
  ASSERT_EQ(sim.size(), net.size());
  for (size_t i = 0; i < sim.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(sim[i].kind(), net[i].kind());
    ASSERT_EQ(sim[i].has_timestamp(), net[i].has_timestamp());
    if (sim[i].has_timestamp()) {
      EXPECT_EQ(sim[i].timestamp(), net[i].timestamp());
    }
    ASSERT_EQ(sim[i].num_values(), net[i].num_values());
    for (int v = 0; v < sim[i].num_values(); ++v) {
      EXPECT_EQ(sim[i].values()[v], net[i].values()[v]) << "value " << v;
    }
  }
}

// A mixed internal/external plan with a heartbeat — enough structure that
// timestamp assignment, jitter, clamping, and punctuation all matter.
constexpr char kEquivalencePlan[] = R"(
stream A ts=internal
stream B ts=external skew=40ms
filter F in=A selectivity=0.8 seed=5
union U in=F,B
sink OUT in=U
feed A process=poisson rate=50 seed=21
feed B process=poisson rate=30 seed=22
heartbeat B period=250ms
run horizon=2s ets=on-demand
)";

TEST(NetLoopbackTest, FrameDrivenReplayMatchesSimulationBitForBit) {
  // Reference run: the discrete-event simulation.
  Result<Experiment> sim_exp = ParseExperiment(kEquivalencePlan);
  ASSERT_TRUE(sim_exp.ok());
  Sink* sim_sink = sim_exp->plan.graph->sinks().front();
  sim_sink->set_collect(true);
  Result<ExperimentReport> sim_report = RunExperiment(&*sim_exp);
  ASSERT_TRUE(sim_report.ok());
  ASSERT_GT(sim_sink->collected().size(), 0u);
  EXPECT_EQ(sim_report->buffer_order_violations, 0u);

  // Network run: the same file expanded to frames and replayed over TCP
  // into a frame-driven server.
  ServerHarness harness(kEquivalencePlan);
  Result<Experiment> feed_exp = ParseExperiment(kEquivalencePlan);
  ASSERT_TRUE(feed_exp.ok());
  Result<std::vector<ScheduledFrame>> schedule =
      BuildFeedSchedule(*feed_exp, feed_exp->run.horizon);
  ASSERT_TRUE(schedule.ok());
  ASSERT_GT(schedule->size(), 0u);

  harness.Serve();
  FeedClientOptions copts;
  copts.port = harness.server->port();
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  Result<uint64_t> sent = client.Send(*schedule);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, schedule->size());
  client.Close();
  ASSERT_TRUE(harness.Join().ok());

  EXPECT_EQ(harness.server->frames_ingested(), schedule->size());
  EXPECT_EQ(harness.server->decode_errors(), 0u);
  EXPECT_EQ(harness.server->order_validator().violations(), 0u);
  ExpectSameTuples(sim_sink->collected(), harness.sink()->collected());
}

TEST(NetLoopbackTest, WatchdogEtsFiresWhenFeederDies) {
  // Two external streams into a union: the union idle-waits on whichever
  // stream is silent. The feeder sends data on A only, then disconnects —
  // the wall clock keeps moving, so the liveness watchdog must produce
  // fallback ETS that let the union drain A's tuples to the sink.
  constexpr char kPlan[] = R"(
stream A ts=external skew=50ms
stream B ts=external skew=50ms
union U in=A,B
sink OUT in=U
run horizon=1s watchdog=100ms ets=on-demand
)";
  ServerHarness harness(kPlan, IngestClock::Mode::kWallClock);
  harness.Serve();

  FeedClientOptions copts;
  copts.port = harness.server->port();
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  for (int i = 1; i <= 5; ++i) {
    WireFrame frame;
    frame.stream_id = 0;  // stream A (declaration order)
    frame.timestamp = i * kMillisecond;
    frame.values.emplace_back(int64_t{i});
    ASSERT_TRUE(client.SendFrame(frame).ok());
  }
  client.Close();  // the producer dies; the server keeps serving

  ASSERT_TRUE(harness.Join().ok());
  EXPECT_GT(harness.executor->stats().watchdog_ets, 0u);
  // The query drained: every tuple made it through the idle-waiting union.
  EXPECT_EQ(harness.sink()->data_delivered(), 5u);
  bool any_degraded = false;
  for (Source* source : harness.graph->sources()) {
    any_degraded = any_degraded || source->degraded();
  }
  EXPECT_TRUE(any_degraded);
  // The fallback emissions are visible in the metrics snapshot, next to
  // the server's own net.* counters — what an operator would actually see.
  MetricsRegistry registry;
  harness.executor->stats().PublishTo(&registry, "exec");
  harness.server->PublishTo(&registry);
  EXPECT_GT(registry.GetCounter("exec.frontier.lease_expired_ets")->value(),
            0u);
  EXPECT_EQ(registry.GetCounter("net.frames")->value(), 5u);
}

TEST(NetLoopbackTest, SkewViolationsAreQuarantinedNotFatal) {
  constexpr char kPlan[] = R"(
stream E ts=external skew=10ms
sink OUT in=E
run horizon=1s violations=quarantine
)";
  ServerHarness harness(kPlan);
  harness.Serve();

  FeedClientOptions copts;
  copts.port = harness.server->port();
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  // Three honest frames (skew 1ms, inside the declared 10ms bound)...
  for (int i = 1; i <= 3; ++i) {
    WireFrame frame;
    frame.stream_id = 0;
    frame.arrival_hint = i * 10 * kMillisecond;
    frame.timestamp = *frame.arrival_hint - kMillisecond;
    frame.values.emplace_back(int64_t{i});
    ASSERT_TRUE(client.SendFrame(frame).ok());
  }
  // ...then three breaching the contract by 40ms. A crashing engine here
  // would be a remote-triggered abort; instead the ViolationPolicy decides.
  for (int i = 4; i <= 6; ++i) {
    WireFrame frame;
    frame.stream_id = 0;
    frame.arrival_hint = i * 10 * kMillisecond;
    frame.timestamp = *frame.arrival_hint - 50 * kMillisecond;
    frame.values.emplace_back(int64_t{i});
    ASSERT_TRUE(client.SendFrame(frame).ok());
  }
  client.Close();
  ASSERT_TRUE(harness.Join().ok());

  std::vector<ConnectionReport> reports =
      harness.server->connection_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].frames, 6u);
  EXPECT_EQ(reports[0].skew_violations, 3u);
  EXPECT_GE(reports[0].max_skew, 50 * kMillisecond);
  EXPECT_EQ(harness.server->order_validator().quarantined(), 3u);
  EXPECT_EQ(harness.sink()->data_delivered(), 3u);
}

TEST(NetLoopbackTest, GarbageBytesCloseOneConnectionServerSurvives) {
  constexpr char kPlan[] = R"(
stream I ts=internal
sink OUT in=I
run horizon=1s
)";
  ServerHarness harness(kPlan);
  harness.Serve();

  FeedClientOptions copts;
  copts.port = harness.server->port();
  copts.connections = 2;
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());

  // Connection 1: a hostile length prefix claiming a 16 MiB frame, then
  // garbage. The server must reject it from the prefix alone.
  std::string garbage("\xff\xff\xff\x00heyheyhey", 13);
  ASSERT_TRUE(client.SendBytes(garbage, /*index=*/1).ok());

  // Connection 0: honest traffic, which must be unaffected.
  for (int i = 0; i < 3; ++i) {
    WireFrame frame;
    frame.stream_id = 0;
    frame.arrival_hint = (i + 1) * kMillisecond;
    frame.values.emplace_back(int64_t{i});
    ASSERT_TRUE(client.SendFrame(frame, /*index=*/0).ok());
  }
  client.Close();
  ASSERT_TRUE(harness.Join().ok());

  EXPECT_GE(harness.server->decode_errors(), 1u);
  EXPECT_EQ(harness.server->frames_ingested(), 3u);
  EXPECT_EQ(harness.sink()->data_delivered(), 3u);
  uint64_t closed_with_errors = 0;
  for (const ConnectionReport& report :
       harness.server->connection_reports()) {
    if (report.decode_errors > 0) {
      ++closed_with_errors;
      EXPECT_FALSE(report.open);
    }
  }
  EXPECT_EQ(closed_with_errors, 1u);
}

TEST(NetLoopbackTest, IdlePeerIsClosedAndCountedHonestTrafficSurvives) {
  constexpr char kPlan[] = R"(
stream I ts=internal
sink OUT in=I
run horizon=1s
)";
  // 100ms of virtual silence closes a peer. One connection never says
  // anything — not even HELLO — while the other feeds honestly; only the
  // mute one may be reaped, and its demise must be visible in net.*.
  ServerHarness harness(kPlan, IngestClock::Mode::kFrameDriven,
                        /*idle_timeout=*/100 * kMillisecond);
  harness.Serve();

  // The mute peer: a raw socket that connects and then holds its tongue.
  // It must stay open on the client side, or a plain disconnect (not the
  // idle sweep) would be what removes it.
  int mute = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(mute, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(harness.server->port()));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(mute, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  FeedClientOptions copts;
  copts.port = harness.server->port();
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  // The honest feed drives the frame-driven clock past the timeout; its
  // own activity stamps keep it alive for the whole run.
  for (int i = 0; i < 10; ++i) {
    WireFrame frame;
    frame.stream_id = 0;
    frame.arrival_hint = (i + 1) * 90 * kMillisecond;
    frame.values.emplace_back(int64_t{i});
    ASSERT_TRUE(client.SendFrame(frame).ok());
  }
  client.Close();
  ASSERT_TRUE(harness.Join().ok());
  ::close(mute);

  EXPECT_EQ(harness.server->idle_closes(), 1u);
  EXPECT_EQ(harness.sink()->data_delivered(), 10u);
  uint64_t reaped = 0;
  for (const ConnectionReport& report :
       harness.server->connection_reports()) {
    if (report.idle_closed) {
      ++reaped;
      EXPECT_FALSE(report.open);
      EXPECT_FALSE(report.helloed);
      EXPECT_EQ(report.frames, 0u);
    } else {
      EXPECT_EQ(report.frames, 10u);
    }
  }
  EXPECT_EQ(reaped, 1u);
  MetricsRegistry registry;
  harness.server->PublishTo(&registry);
  EXPECT_EQ(registry.GetCounter("net.idle_closes")->value(), 1u);
}

TEST(NetLoopbackTest, OverloadShedsInsteadOfGrowingWithoutBound) {
  constexpr char kPlan[] = R"(
stream I ts=internal
sink OUT in=I
run horizon=1s buffer_cap=4 overload=shed
)";
  ServerHarness harness(kPlan);
  harness.Serve();

  FeedClientOptions copts;
  copts.port = harness.server->port();
  FeedClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  // A burst with no arrival hints is all "due now": the delivery loop
  // pushes it into a 4-slot arc faster than the executor drains, so the
  // shed policy must discard the overflow instead of growing the buffer.
  constexpr int kBurst = 500;
  for (int i = 0; i < kBurst; ++i) {
    WireFrame frame;
    frame.stream_id = 0;
    frame.values.emplace_back(int64_t{i});
    ASSERT_TRUE(client.SendFrame(frame).ok());
  }
  client.Close();
  ASSERT_TRUE(harness.Join().ok());

  EXPECT_EQ(harness.server->frames_ingested(),
            static_cast<uint64_t>(kBurst));
  const uint64_t shed = harness.graph->TotalShedTuples();
  EXPECT_GT(shed, 0u);
  // Conservation: every frame either reached the sink or was shed.
  EXPECT_EQ(harness.sink()->data_delivered() + shed,
            static_cast<uint64_t>(kBurst));
  std::vector<ConnectionReport> reports =
      harness.server->connection_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].shed_tuples, shed);
}

}  // namespace
}  // namespace dsms
