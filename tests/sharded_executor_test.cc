// Sharded multicore execution engine (exec/sharded_executor.h): the static
// partitioner's homing rules, the deterministic mode's byte-identity to the
// scalar DFS schedule, checkpoint state round-trips, seed reproducibility
// of sharded runs, and the parallel mode's conservation/ordering contract
// (identical delivery, zero order violations — the schedule itself is
// free-running and deliberately not byte-compared).

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/clock.h"
#include "common/time.h"
#include "core/tuple.h"
#include "exec/dfs_executor.h"
#include "exec/shard_partitioner.h"
#include "exec/sharded_executor.h"
#include "graph/graph_builder.h"
#include "graph/query_graph.h"
#include "obs/metrics_registry.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/union_op.h"
#include "recovery/state_codec.h"
#include "sim/scenario.h"
#include "test_seed.h"

namespace dsms {
namespace {

// --- ShardPartitioner --------------------------------------------------------

/// The paper's union graph: S1 -> F1 and S2 -> F2 into U -> OUT.
struct UnionRig {
  explicit UnionRig(ExecConfig config) {
    GraphBuilder builder;
    s1 = builder.AddSource("S1", TimestampKind::kInternal);
    s2 = builder.AddSource("S2", TimestampKind::kInternal);
    f1 = builder.AddFilter("F1", [](const Tuple&) { return true; });
    f2 = builder.AddFilter("F2", [](const Tuple&) { return true; });
    u = builder.AddUnion("U");
    sink = builder.AddSink("OUT");
    builder.Connect(s1, f1);
    builder.Connect(s2, f2);
    builder.Connect(f1, u);
    builder.Connect(f2, u);
    builder.Connect(u, sink);
    auto built = builder.Build();
    DSMS_CHECK_OK(built.status());
    graph = std::move(built).value();
    sink->set_collect(true);
    if (config.shards > 1) {
      executor = std::make_unique<ShardedExecutor>(graph.get(), &clock,
                                                   config);
    } else {
      executor = std::make_unique<DfsExecutor>(graph.get(), &clock, config);
    }
  }

  std::unique_ptr<QueryGraph> graph;
  VirtualClock clock;
  Source* s1;
  Source* s2;
  Filter* f1;
  Filter* f2;
  Union* u;
  Sink* sink;
  std::unique_ptr<Executor> executor;
};

ExecConfig ShardedConfig(int shards, ShardMode mode, uint64_t seed = 42) {
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  config.shards = shards;
  config.shard_mode = mode;
  config.shard_seed = seed;
  return config;
}

TEST(ShardPartitionerTest, HashStreamIsTheDocumentedFnv1a) {
  // The hash is part of the deterministic-replay contract (checkpoints
  // partition-by-value), so the exact FNV-1a fold is pinned here.
  auto fnv = [](int32_t id) {
    uint32_t hash = 2166136261u;
    uint32_t bytes = static_cast<uint32_t>(id);
    for (int i = 0; i < 4; ++i) {
      hash ^= (bytes >> (8 * i)) & 0xffu;
      hash *= 16777619u;
    }
    return hash;
  };
  for (int32_t id : {0, 1, 2, 3, 7, 100, -1}) {
    EXPECT_EQ(ShardPartitioner::HashStream(id), fnv(id)) << id;
  }
}

TEST(ShardPartitionerTest, SingleShardHomesEverythingOnShardZero) {
  UnionRig rig{ShardedConfig(2, ShardMode::kDeterministic)};
  ShardPlan plan = ShardPartitioner::Partition(*rig.graph, 1);
  EXPECT_EQ(plan.num_shards, 1);
  for (int op = 0; op < rig.graph->num_operators(); ++op) {
    EXPECT_EQ(plan.shard_of(op), 0) << op;
  }
  EXPECT_TRUE(plan.cross_arcs.empty());
  ASSERT_EQ(plan.shard_ops.size(), 1u);
  EXPECT_EQ(plan.shard_ops[0].size(),
            static_cast<size_t>(rig.graph->num_operators()));
}

TEST(ShardPartitionerTest, FirstInputLineageHomesTheUnionWithInputZero) {
  UnionRig rig{ShardedConfig(4, ShardMode::kDeterministic)};
  ShardPlan plan = ShardPartitioner::Partition(*rig.graph, 4);

  // Sources anchor: hash(stream_id) mod N.
  EXPECT_EQ(plan.shard_of(rig.s1->id()),
            static_cast<int>(ShardPartitioner::HashStream(
                                 rig.s1->stream_id()) % 4u));
  EXPECT_EQ(plan.shard_of(rig.s2->id()),
            static_cast<int>(ShardPartitioner::HashStream(
                                 rig.s2->stream_id()) % 4u));

  // Filters ride their only input; the fan-in is homed with input 0 (F1's
  // chain), the sink with the union.
  EXPECT_EQ(plan.shard_of(rig.f1->id()), plan.shard_of(rig.s1->id()));
  EXPECT_EQ(plan.shard_of(rig.f2->id()), plan.shard_of(rig.s2->id()));
  EXPECT_EQ(plan.shard_of(rig.u->id()), plan.shard_of(rig.f1->id()));
  EXPECT_EQ(plan.shard_of(rig.sink->id()), plan.shard_of(rig.u->id()));

  // Exactly the arcs whose endpoints landed on different shards are cross
  // arcs; with S1 and S2 on different shards that is precisely F2 -> U.
  ASSERT_EQ(plan.arc_crosses.size(),
            static_cast<size_t>(rig.graph->num_buffers()));
  for (int arc = 0; arc < rig.graph->num_buffers(); ++arc) {
    const bool crosses = plan.shard_of(rig.graph->producer_of(arc)) !=
                         plan.shard_of(rig.graph->consumer_of(arc));
    EXPECT_EQ(plan.ArcCrossesShards(arc), crosses) << arc;
  }
  if (plan.shard_of(rig.s1->id()) != plan.shard_of(rig.s2->id())) {
    ASSERT_EQ(plan.cross_arcs.size(), 1u);
    EXPECT_EQ(rig.graph->consumer_of(plan.cross_arcs[0]), rig.u->id());
    EXPECT_EQ(rig.graph->producer_of(plan.cross_arcs[0]), rig.f2->id());
  }
}

TEST(ShardPartitionerTest, UpstreamStreamsIsTheCouldResultInClosure) {
  UnionRig rig{ShardedConfig(2, ShardMode::kDeterministic)};
  ShardPlan plan = ShardPartitioner::Partition(*rig.graph, 2);

  using Streams = std::vector<int32_t>;
  const int32_t a = rig.s1->stream_id();
  const int32_t b = rig.s2->stream_id();
  EXPECT_EQ(plan.upstream_streams[rig.s1->id()], Streams({a}));
  EXPECT_EQ(plan.upstream_streams[rig.f1->id()], Streams({a}));
  EXPECT_EQ(plan.upstream_streams[rig.f2->id()], Streams({b}));
  EXPECT_EQ(plan.upstream_streams[rig.u->id()], Streams({a, b}));
  EXPECT_EQ(plan.upstream_streams[rig.sink->id()], Streams({a, b}));
}

TEST(ShardPartitionerTest, ShardOpsAreAscendingAndPartitionTheGraph) {
  UnionRig rig{ShardedConfig(3, ShardMode::kDeterministic)};
  ShardPlan plan = ShardPartitioner::Partition(*rig.graph, 3);
  size_t total = 0;
  for (int shard = 0; shard < plan.num_shards; ++shard) {
    const std::vector<int>& ops = plan.shard_ops[shard];
    total += ops.size();
    for (size_t i = 0; i + 1 < ops.size(); ++i) {
      EXPECT_LT(ops[i], ops[i + 1]);
    }
    for (int op : ops) EXPECT_EQ(plan.shard_of(op), shard);
  }
  EXPECT_EQ(total, static_cast<size_t>(rig.graph->num_operators()));
}

// --- Deterministic mode ------------------------------------------------------

TEST(ShardedExecutorTest, DeterministicDeliveryMatchesScalarDfs) {
  UnionRig scalar{ShardedConfig(1, ShardMode::kDeterministic)};
  UnionRig sharded{ShardedConfig(4, ShardMode::kDeterministic)};

  auto feed = [](UnionRig* rig) {
    for (int i = 0; i < 50; ++i) {
      rig->clock.Advance(20 * kMillisecond);
      rig->s1->Ingest({Value(int64_t{i})}, rig->clock.now());
      if (i % 10 == 0) {
        rig->s2->Ingest({Value(int64_t{1000 + i})}, rig->clock.now());
      }
    }
    rig->executor->RunUntilIdle();
  };
  feed(&scalar);
  feed(&sharded);

  ASSERT_EQ(sharded.sink->collected().size(), scalar.sink->collected().size());
  for (size_t i = 0; i < scalar.sink->collected().size(); ++i) {
    EXPECT_EQ(sharded.sink->collected()[i].timestamp(),
              scalar.sink->collected()[i].timestamp())
        << i;
  }
  EXPECT_TRUE(sharded.executor->stats() == scalar.executor->stats());
  EXPECT_EQ(scalar.clock.now(), sharded.clock.now());

  auto* exec = static_cast<ShardedExecutor*>(sharded.executor.get());
  EXPECT_EQ(exec->num_shards(), 4);
  EXPECT_GT(exec->epochs(), 0u);
  // Work happened on the shards the plan homed the operators on.
  uint64_t steps = 0;
  for (int shard = 0; shard < 4; ++shard) steps += exec->shard_steps(shard);
  EXPECT_GT(steps, 0u);
}

TEST(ShardedExecutorTest, HopsCountOnlyCrossShardTransitions) {
  UnionRig rig{ShardedConfig(4, ShardMode::kDeterministic)};
  auto* exec = static_cast<ShardedExecutor*>(rig.executor.get());
  const ShardPlan& plan = exec->plan();
  for (int i = 0; i < 20; ++i) {
    rig.clock.Advance(20 * kMillisecond);
    rig.s1->Ingest({Value(int64_t{i})}, rig.clock.now());
    rig.s2->Ingest({Value(int64_t{100 + i})}, rig.clock.now());
  }
  rig.executor->RunUntilIdle();
  if (plan.cross_arcs.empty()) {
    EXPECT_EQ(exec->shard_hops(), 0u);
  } else {
    EXPECT_GT(exec->shard_hops(), 0u);
  }
}

// --- Checkpoint state --------------------------------------------------------

TEST(ShardedExecutorTest, StateRoundTripsThroughSaveAndLoad) {
  UnionRig a{ShardedConfig(2, ShardMode::kDeterministic)};
  for (int i = 0; i < 30; ++i) {
    a.clock.Advance(20 * kMillisecond);
    a.s1->Ingest({Value(int64_t{i})}, a.clock.now());
    a.s2->Ingest({Value(int64_t{500 + i})}, a.clock.now());
  }
  a.executor->RunUntilIdle();
  auto* exec_a = static_cast<ShardedExecutor*>(a.executor.get());
  ASSERT_GT(exec_a->epochs(), 0u);

  StateWriter w;
  a.executor->SaveState(w);
  const std::string blob = w.Take();

  UnionRig b{ShardedConfig(2, ShardMode::kDeterministic)};
  StateReader r(blob);
  b.executor->LoadState(r);
  EXPECT_TRUE(r.ok());

  auto* exec_b = static_cast<ShardedExecutor*>(b.executor.get());
  EXPECT_TRUE(exec_b->stats() == exec_a->stats());
  EXPECT_EQ(exec_b->epochs(), exec_a->epochs());
  EXPECT_EQ(exec_b->shard_hops(), exec_a->shard_hops());
  EXPECT_EQ(exec_b->current(), exec_a->current());
  for (int shard = 0; shard < 2; ++shard) {
    EXPECT_EQ(exec_b->shard_steps(shard), exec_a->shard_steps(shard))
        << shard;
  }
}

TEST(ShardedExecutorDeathTest, RestoreRejectsShardCountMismatch) {
  UnionRig a{ShardedConfig(2, ShardMode::kDeterministic)};
  a.s1->Ingest({Value(int64_t{1})}, a.clock.now());
  a.executor->RunUntilIdle();
  StateWriter w;
  a.executor->SaveState(w);
  const std::string blob = w.Take();

  // A shards=2 blob must not restore into a shards=4 engine: the schedule
  // it encodes partitions differently.
  UnionRig b{ShardedConfig(4, ShardMode::kDeterministic)};
  EXPECT_DEATH(
      {
        StateReader r(blob);
        b.executor->LoadState(r);
      },
      "");
}

// --- Seed reproducibility (DSMS_TEST_SEED) -----------------------------------

TEST(ShardedExecutorTest, SameSeedSameShardsReproducesTheTraceExactly) {
  const uint64_t seed = test::TestSeedOr(42);
  DSMS_TRACE_SEED(seed);

  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.horizon = 90 * kSecond;
  config.warmup = 0;
  config.seed = seed;
  config.shards = 4;
  config.record_trace = true;

  ScenarioResult first = RunScenario(config);
  ScenarioResult second = RunScenario(config);
  ASSERT_GT(first.trace_events, 0u);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.trace_events, second.trace_events);
  EXPECT_EQ(first.sink_digest, second.sink_digest);
  EXPECT_EQ(first.shard_hops, second.shard_hops);
  EXPECT_EQ(first.shard_epochs, second.shard_epochs);
}

// --- Parallel mode -----------------------------------------------------------

/// The parallel contract is conservation and order, not schedule identity:
/// a free-running run must deliver exactly the tuples the deterministic
/// schedule delivers, in timestamp order at the sink, and terminate.
TEST(ShardedExecutorTest, ParallelDeliversTheSameTuplesInOrder) {
  for (int shape = 0; shape < 2; ++shape) {  // union, join
    ScenarioConfig config;
    config.kind = ScenarioKind::kOnDemandEts;
    config.shape = static_cast<QueryShape>(shape);
    config.horizon = 90 * kSecond;
    config.warmup = 0;
    config.shards = 4;

    ScenarioResult oracle = RunScenario(config);  // deterministic mode

    config.shard_mode = ShardMode::kParallel;
    ScenarioResult parallel = RunScenario(config);

    const std::string label = "shape=" + std::to_string(shape);
    EXPECT_EQ(parallel.tuples_delivered, oracle.tuples_delivered) << label;
    EXPECT_EQ(parallel.order_violations, 0u) << label;
    EXPECT_EQ(parallel.buffer_order_violations, 0u) << label;
    EXPECT_EQ(parallel.shards_used, 4u) << label;
    EXPECT_GT(parallel.shard_epochs, 0u) << label;
  }
}

TEST(ShardedExecutorTest, ParallelSurvivesSourceFlap) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.horizon = 90 * kSecond;
  config.warmup = 0;
  config.shards = 4;
  config.shard_mode = ShardMode::kParallel;
  config.fault.kind = FaultKind::kFlap;
  config.fault.start = 30 * kSecond;
  config.fault.duration = 30 * kSecond;
  config.fault.punct_period = 10 * kSecond;
  config.fault_target = 0;
  config.watchdog_horizon = 5 * kSecond;

  ScenarioResult result = RunScenario(config);
  EXPECT_GT(result.tuples_delivered, 0u);
  EXPECT_EQ(result.order_violations, 0u);
  EXPECT_GT(result.fault_events, 0u);
}

TEST(ShardedExecutorTest, ParallelSameSeedDeliversIdenticalSinkDigest) {
  const uint64_t seed = test::TestSeedOr(42);
  DSMS_TRACE_SEED(seed);

  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.horizon = 60 * kSecond;
  config.warmup = 0;
  config.seed = seed;
  config.shards = 2;
  config.shard_mode = ShardMode::kParallel;

  // The tuple *content* stream is seed-determined even though the parallel
  // schedule is not: both runs must deliver the same multiset, and the IWP
  // sink discipline makes it the same order — hence the same digest.
  ScenarioResult first = RunScenario(config);
  ScenarioResult second = RunScenario(config);
  EXPECT_EQ(first.tuples_delivered, second.tuples_delivered);
  EXPECT_EQ(first.sink_digest, second.sink_digest);
}

// --- Metrics -----------------------------------------------------------------

TEST(ShardedExecutorTest, ShardMetricsLandInTheRegistry) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.horizon = 60 * kSecond;
  config.warmup = 0;
  config.shards = 2;

  ScenarioResult result = RunScenario(config);
  MetricsRegistry registry;
  result.PublishTo(&registry, "scenario");
  EXPECT_EQ(registry.GetGauge("scenario.exec.shard.shards")->value(), 2.0);
  EXPECT_EQ(registry.GetCounter("scenario.exec.shard.epochs")->value(),
            result.shard_epochs);
  EXPECT_EQ(registry.GetCounter("scenario.exec.shard.hops")->value(),
            result.shard_hops);
}

}  // namespace
}  // namespace dsms
