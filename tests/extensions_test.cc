// Tests for the extension modules: Split routing, grouped window
// aggregation, the per-operator stats report, and the arrival-trace loader.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "core/value.h"
#include "graph/graph_builder.h"
#include "graph/plan_parser.h"
#include "metrics/stats_report.h"
#include "operators/grouped_aggregate.h"
#include "operators/split.h"
#include "sim/trace_loader.h"

namespace dsms {
namespace {

Tuple KeyedTuple(Timestamp ts, int64_t key, double v) {
  return Tuple::MakeData(ts, {Value(key), Value(v)});
}

// --- Split ------------------------------------------------------------------

struct SplitRig {
  explicit SplitRig(std::vector<Split::Predicate> predicates)
      : op("split", std::move(predicates)) {
    op.AddInput(&in);
    for (int i = 0; i < op.min_outputs(); ++i) {
      outs.push_back(std::make_unique<StreamBuffer>("out"));
      op.AddOutput(outs.back().get());
    }
  }
  StreamBuffer in{"in"};
  std::vector<std::unique_ptr<StreamBuffer>> outs;
  Split op;
};

TEST(SplitTest, RoutesByPredicate) {
  SplitRig rig({[](const Tuple& t) { return t.value(0).int64_value() < 5; },
                [](const Tuple& t) { return t.value(0).int64_value() >= 5; }});
  ManualExecContext ctx;
  rig.in.Push(KeyedTuple(1, 3, 0));
  rig.in.Push(KeyedTuple(2, 7, 0));
  rig.op.Step(ctx);
  rig.op.Step(ctx);
  ASSERT_EQ(rig.outs[0]->size(), 1u);
  ASSERT_EQ(rig.outs[1]->size(), 1u);
  EXPECT_EQ(rig.outs[0]->Front().value(0).int64_value(), 3);
  EXPECT_EQ(rig.outs[1]->Front().value(0).int64_value(), 7);
}

TEST(SplitTest, TupleMayMatchSeveralOutputsOrNone) {
  SplitRig rig({[](const Tuple& t) { return t.value(0).int64_value() > 0; },
                [](const Tuple& t) { return t.value(0).int64_value() > 10; }});
  ManualExecContext ctx;
  rig.in.Push(KeyedTuple(1, 20, 0));  // matches both
  rig.in.Push(KeyedTuple(2, -1, 0));  // matches none (dropped)
  rig.op.Step(ctx);
  rig.op.Step(ctx);
  EXPECT_EQ(rig.outs[0]->size(), 1u);
  EXPECT_EQ(rig.outs[1]->size(), 1u);
}

TEST(SplitTest, PunctuationReplicatedToAllBranches) {
  SplitRig rig({[](const Tuple&) { return false; },
                [](const Tuple&) { return false; }});
  ManualExecContext ctx;
  rig.in.Push(Tuple::MakePunctuation(99));
  rig.op.Step(ctx);
  ASSERT_EQ(rig.outs[0]->size(), 1u);
  ASSERT_EQ(rig.outs[1]->size(), 1u);
  EXPECT_EQ(rig.outs[0]->Front().timestamp(), 99);
  EXPECT_EQ(rig.outs[1]->Front().timestamp(), 99);
}

TEST(SplitTest, GraphValidationEnforcesOutputCount) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  Split* split = builder.AddSplit(
      "SP", {[](const Tuple&) { return true; },
             [](const Tuple&) { return false; }});
  Sink* only = builder.AddSink("O1");
  builder.Connect(s, split);
  builder.Connect(split, only);  // one output connected, two required
  EXPECT_FALSE(builder.Build().ok());
}

// --- GroupedWindowAggregate --------------------------------------------------

struct GroupedRig {
  GroupedRig(AggKind kind, Duration window, Duration slide)
      : op("g", kind, /*key_field=*/0, /*agg_field=*/1, window, slide) {
    op.AddInput(&in);
    op.AddOutput(&out);
  }
  std::vector<Tuple> Drain(ManualExecContext& ctx) {
    for (int guard = 0; guard < 100000; ++guard) {
      if (!op.Step(ctx).more) break;
    }
    std::vector<Tuple> result;
    while (!out.empty()) result.push_back(out.Pop());
    return result;
  }
  StreamBuffer in{"in"};
  StreamBuffer out{"out"};
  GroupedWindowAggregate op;
};

TEST(GroupedAggregateTest, SumPerGroupPerWindow) {
  GroupedRig rig(AggKind::kSum, 100, 100);
  ManualExecContext ctx;
  rig.in.Push(KeyedTuple(10, 1, 5.0));
  rig.in.Push(KeyedTuple(20, 2, 7.0));
  rig.in.Push(KeyedTuple(30, 1, 3.0));
  rig.in.Push(Tuple::MakePunctuation(100));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  std::vector<Tuple> data;
  for (Tuple& t : emitted) {
    if (t.is_data()) data.push_back(t);
  }
  ASSERT_EQ(data.size(), 2u);
  // Deterministic key order: group 1 then group 2.
  EXPECT_EQ(data[0].value(0).int64_value(), 0);   // window start
  EXPECT_EQ(data[0].value(1).int64_value(), 1);   // key
  EXPECT_DOUBLE_EQ(data[0].value(2).AsDouble(), 8.0);
  EXPECT_EQ(data[1].value(1).int64_value(), 2);
  EXPECT_DOUBLE_EQ(data[1].value(2).AsDouble(), 7.0);
  EXPECT_EQ(data[0].timestamp(), 100);  // window end
}

TEST(GroupedAggregateTest, EmptyWindowsEmitNothing) {
  GroupedRig rig(AggKind::kCount, 100, 100);
  ManualExecContext ctx;
  rig.in.Push(KeyedTuple(10, 1, 0));
  rig.in.Push(Tuple::MakePunctuation(500));  // closes [0,100) and 3 empties
  int data = 0;
  for (const Tuple& t : rig.Drain(ctx)) {
    if (t.is_data()) ++data;
  }
  EXPECT_EQ(data, 1);
}

TEST(GroupedAggregateTest, SlidingWindowsOverlapPerGroup) {
  GroupedRig rig(AggKind::kCount, 100, 50);
  ManualExecContext ctx;
  rig.in.Push(KeyedTuple(60, 5, 0));
  rig.in.Push(Tuple::MakePunctuation(200));
  std::vector<std::pair<int64_t, int64_t>> results;  // (start, key)
  for (const Tuple& t : rig.Drain(ctx)) {
    if (t.is_data()) {
      results.emplace_back(t.value(0).int64_value(),
                           t.value(1).int64_value());
    }
  }
  ASSERT_EQ(results.size(), 2u);  // windows [0,100) and [50,150)
  EXPECT_EQ(results[0].first, 0);
  EXPECT_EQ(results[1].first, 50);
}

TEST(GroupedAggregateTest, StringKeys) {
  GroupedWindowAggregate op("g", AggKind::kCount, 0, 0, 100, 100);
  StreamBuffer in("in");
  StreamBuffer out("out");
  op.AddInput(&in);
  op.AddOutput(&out);
  ManualExecContext ctx;
  in.Push(Tuple::MakeData(10, {Value("apple")}));
  in.Push(Tuple::MakeData(20, {Value("banana")}));
  in.Push(Tuple::MakeData(30, {Value("apple")}));
  in.Push(Tuple::MakePunctuation(100));
  for (int i = 0; i < 10; ++i) op.Step(ctx);
  std::vector<std::pair<std::string, double>> results;
  while (!out.empty()) {
    Tuple t = out.Pop();
    if (t.is_data()) {
      results.emplace_back(t.value(1).string_value(),
                           t.value(2).AsDouble());
    }
  }
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].first, "apple");
  EXPECT_DOUBLE_EQ(results[0].second, 2.0);
  EXPECT_EQ(results[1].first, "banana");
}

TEST(GroupedAggregateTest, WantsEtsWhileWindowsOpen) {
  GroupedRig rig(AggKind::kSum, 100, 100);
  ManualExecContext ctx;
  EXPECT_FALSE(rig.op.WantsEts());
  rig.in.Push(KeyedTuple(10, 1, 5.0));
  rig.Drain(ctx);
  EXPECT_TRUE(rig.op.WantsEts());
  EXPECT_EQ(rig.op.EtsReleaseBound(), 100);
  rig.in.Push(Tuple::MakePunctuation(100));
  rig.Drain(ctx);
  EXPECT_FALSE(rig.op.WantsEts());
}

TEST(GroupedAggregateTest, ForwardsStrengthenedPunctuation) {
  GroupedRig rig(AggKind::kSum, 100, 100);
  ManualExecContext ctx;
  rig.in.Push(KeyedTuple(10, 1, 5.0));
  rig.in.Push(Tuple::MakePunctuation(150));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  ASSERT_FALSE(emitted.empty());
  EXPECT_TRUE(emitted.back().is_punctuation());
  EXPECT_EQ(emitted.back().timestamp(), 200);
}

TEST(GroupedAggregateTest, LatentInputStamped) {
  GroupedRig rig(AggKind::kCount, 100, 100);
  ManualExecContext ctx(50);
  rig.in.Push(Tuple::MakeLatent({Value(int64_t{1}), Value(0.0)}));
  rig.op.Step(ctx);
  ctx.set_now(150);
  rig.in.Push(Tuple::MakeLatent({Value(int64_t{1}), Value(0.0)}));
  rig.op.Step(ctx);
  EXPECT_EQ(rig.op.results_emitted(), 1u);
}

// --- Stats report ------------------------------------------------------------

TEST(StatsReportTest, ListsEveryOperator) {
  GraphBuilder builder;
  Source* s = builder.AddSource("SRC", TimestampKind::kInternal);
  Sink* sink = builder.AddSink("SNK");
  builder.Connect(s, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  s->Ingest({}, 5);
  std::string report = OperatorStatsString(**graph);
  EXPECT_NE(report.find("SRC"), std::string::npos);
  EXPECT_NE(report.find("SNK"), std::string::npos);
  EXPECT_NE(report.find("data_in"), std::string::npos);
}

// --- Trace loader -------------------------------------------------------------

TEST(TraceLoaderTest, ParsesUnitsAndComments) {
  auto trace = ParseArrivalTrace(R"(
# arrival times
100
2ms
1.5s    # one and a half seconds
)");
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_EQ(*trace, (std::vector<Timestamp>{100, 2000, 1500000}));
}

TEST(TraceLoaderTest, RejectsNonIncreasing) {
  auto trace = ParseArrivalTrace("10\n10\n");
  ASSERT_FALSE(trace.ok());
  EXPECT_NE(trace.status().message().find("line 2"), std::string::npos);
}

TEST(TraceLoaderTest, RejectsGarbageWithLineNumber) {
  auto trace = ParseArrivalTrace("10\npotato\n");
  ASSERT_FALSE(trace.ok());
  EXPECT_NE(trace.status().message().find("line 2"), std::string::npos);
}

TEST(TraceLoaderTest, RejectsEmpty) {
  EXPECT_FALSE(ParseArrivalTrace("# nothing\n").ok());
}

TEST(TraceLoaderTest, LoadsFromFile) {
  std::string path = ::testing::TempDir() + "/trace.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("5ms\n10ms\n", f);
    fclose(f);
  }
  auto trace = LoadArrivalTrace(path);
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_EQ(trace->size(), 2u);
  EXPECT_EQ((*trace)[0], 5000);
}

TEST(TraceLoaderTest, MissingFile) {
  auto trace = LoadArrivalTrace("/nonexistent/path/trace.txt");
  EXPECT_EQ(trace.status().code(), StatusCode::kNotFound);
}

// --- Plan parser: new statements ----------------------------------------------

TEST(PlanParserExtensionsTest, MultiWayJoinStatement) {
  auto plan = ParsePlan(R"(
stream A
stream B
stream C
mjoin J in=A,B,C window=2s key=0
sink OUT in=J
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(dynamic_cast<MultiWayJoin*>(plan->Find("J")), nullptr);
}

TEST(PlanParserExtensionsTest, MjoinRequiresWindow) {
  EXPECT_FALSE(ParsePlan("stream A\nstream B\nmjoin J in=A,B key=0\n"
                         "sink O in=J\n")
                   .ok());
}

TEST(PlanParserExtensionsTest, GroupedAggregateStatement) {
  auto plan = ParsePlan(R"(
stream S
gaggregate G in=S fn=sum key=0 field=1 window=1s slide=500ms
sink OUT in=G
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto* g = dynamic_cast<GroupedWindowAggregate*>(plan->Find("G"));
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->window(), kSecond);
  EXPECT_EQ(g->slide(), 500 * kMillisecond);
}

TEST(PlanParserExtensionsTest, GaggregateRequiresKey) {
  EXPECT_FALSE(
      ParsePlan("stream S\ngaggregate G in=S fn=sum window=1s\nsink O in=G\n")
          .ok());
}

}  // namespace
}  // namespace dsms
