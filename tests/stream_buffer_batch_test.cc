// Batch APIs (PushAll / DrainInto), listener management (ReplaceListeners
// regression), ring-buffer growth, and ready-tracker notification contract
// of StreamBuffer.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/ready_tracker.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "core/value.h"

namespace dsms {
namespace {

Tuple Data(Timestamp ts) { return Tuple::MakeData(ts, {Value(ts)}); }

class CountingListener : public BufferListener {
 public:
  void OnPush(const StreamBuffer&, const Tuple&) override { ++pushes; }
  void OnPop(const StreamBuffer&, const Tuple&) override { ++pops; }
  int pushes = 0;
  int pops = 0;
};

TEST(StreamBufferBatchTest, PushAllSplitsCountersByKind) {
  StreamBuffer buffer("b");
  std::vector<Tuple> batch;
  batch.push_back(Data(1));
  batch.push_back(Tuple::MakePunctuation(2));
  batch.push_back(Data(3));
  batch.push_back(Data(4));
  buffer.PushAll(std::move(batch));

  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.total_pushed(), 4u);
  EXPECT_EQ(buffer.data_pushed(), 3u);
  EXPECT_EQ(buffer.punctuation_pushed(), 1u);
  EXPECT_EQ(buffer.data_size(), 3u);
  EXPECT_EQ(buffer.Front().timestamp(), 1);
}

TEST(StreamBufferBatchTest, PushAllMatchesIndividualPushBookkeeping) {
  StreamBuffer one_by_one("a");
  StreamBuffer batched("b");
  std::vector<Tuple> batch;
  for (Timestamp t = 0; t < 10; ++t) {
    if (t % 3 == 0) {
      one_by_one.Push(Tuple::MakePunctuation(t));
      batch.push_back(Tuple::MakePunctuation(t));
    } else {
      one_by_one.Push(Data(t));
      batch.push_back(Data(t));
    }
  }
  batched.PushAll(std::move(batch));

  EXPECT_EQ(batched.total_pushed(), one_by_one.total_pushed());
  EXPECT_EQ(batched.data_pushed(), one_by_one.data_pushed());
  EXPECT_EQ(batched.punctuation_pushed(), one_by_one.punctuation_pushed());
  EXPECT_EQ(batched.data_size(), one_by_one.data_size());
  while (!one_by_one.empty()) {
    EXPECT_EQ(batched.Pop().ToString(), one_by_one.Pop().ToString());
  }
  EXPECT_TRUE(batched.empty());
}

TEST(StreamBufferBatchTest, PushAllNotifiesListenersPerTuple) {
  StreamBuffer buffer("b");
  CountingListener listener;
  buffer.AddListener(&listener);
  std::vector<Tuple> batch;
  for (Timestamp t = 0; t < 5; ++t) batch.push_back(Data(t));
  buffer.PushAll(std::move(batch));
  EXPECT_EQ(listener.pushes, 5);
  EXPECT_EQ(listener.pops, 0);
}

TEST(StreamBufferBatchTest, DrainIntoMovesEverythingInOrder) {
  StreamBuffer buffer("b");
  for (Timestamp t = 0; t < 6; ++t) buffer.Push(Data(t));
  buffer.Push(Tuple::MakePunctuation(6));

  std::vector<Tuple> out;
  out.push_back(Data(100));  // DrainInto appends; pre-existing survives
  size_t drained = buffer.DrainInto(&out);

  EXPECT_EQ(drained, 7u);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[0].timestamp(), 100);
  for (Timestamp t = 0; t < 6; ++t) {
    EXPECT_EQ(out[static_cast<size_t>(t + 1)].timestamp(), t);
    EXPECT_TRUE(out[static_cast<size_t>(t + 1)].is_data());
  }
  EXPECT_TRUE(out[7].is_punctuation());
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.data_size(), 0u);
  // Lifetime push counters are untouched by draining.
  EXPECT_EQ(buffer.total_pushed(), 7u);
  EXPECT_EQ(buffer.data_pushed(), 6u);
  EXPECT_EQ(buffer.punctuation_pushed(), 1u);
}

TEST(StreamBufferBatchTest, DrainIntoNullDiscardsAndNotifiesListeners) {
  StreamBuffer buffer("b");
  CountingListener listener;
  buffer.AddListener(&listener);
  for (Timestamp t = 0; t < 4; ++t) buffer.Push(Data(t));
  EXPECT_EQ(buffer.DrainInto(nullptr), 4u);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(listener.pops, 4);
  EXPECT_EQ(buffer.DrainInto(nullptr), 0u);  // empty drain is a no-op
  EXPECT_EQ(listener.pops, 4);
}

TEST(StreamBufferBatchTest, RingWrapsAndGrowsCorrectly) {
  StreamBuffer buffer("b");
  // Interleave pushes and pops so head_ walks around the ring, then force
  // growth while wrapped.
  Timestamp next = 0;
  for (int i = 0; i < 100; ++i) {
    buffer.Push(Data(next++));
    buffer.Push(Data(next++));
    buffer.Pop();
  }
  // 100 queued, head somewhere mid-ring. FIFO must hold across the growths.
  Timestamp expect = 100;
  while (!buffer.empty()) {
    EXPECT_EQ(buffer.Pop().timestamp(), expect++);
  }
  EXPECT_EQ(expect, 200);
}

// --- ReplaceListeners regression (the set_listener footgun) ---------------

TEST(StreamBufferListenerTest, AddListenerComposes) {
  StreamBuffer buffer("b");
  CountingListener first;
  CountingListener second;
  buffer.AddListener(&first);
  buffer.AddListener(&second);
  EXPECT_EQ(buffer.num_listeners(), 2u);
  buffer.Push(Data(1));
  EXPECT_EQ(first.pushes, 1);
  EXPECT_EQ(second.pushes, 1);
}

TEST(StreamBufferListenerTest, ReplaceListenersIsExplicitlyDestructive) {
  StreamBuffer buffer("b");
  CountingListener first;
  CountingListener second;
  buffer.AddListener(&first);
  // The old `set_listener` name silently dropped `first` here; the renamed
  // API has the same semantics but says so. This pins the contract.
  buffer.ReplaceListeners(&second);
  EXPECT_EQ(buffer.num_listeners(), 1u);
  buffer.Push(Data(1));
  EXPECT_EQ(first.pushes, 0);
  EXPECT_EQ(second.pushes, 1);
  buffer.ReplaceListeners(nullptr);
  EXPECT_EQ(buffer.num_listeners(), 0u);
  buffer.Push(Data(2));
  EXPECT_EQ(second.pushes, 1);
}

// --- Ready-tracker notification contract ----------------------------------

TEST(StreamBufferReadyTest, PushPopDriveCandidateBit) {
  ReadyTracker tracker;
  tracker.Reset(4);
  StreamBuffer buffer("b");
  buffer.set_ready_tracker(&tracker, /*consumer=*/2);

  EXPECT_FALSE(tracker.IsCandidate(2));
  buffer.Push(Data(1));
  EXPECT_TRUE(tracker.IsCandidate(2));
  buffer.Push(Data(2));  // push to non-empty: still a candidate
  EXPECT_TRUE(tracker.IsCandidate(2));
  buffer.Pop();
  EXPECT_TRUE(tracker.IsCandidate(2));  // one tuple left
  buffer.Pop();
  EXPECT_FALSE(tracker.IsCandidate(2));  // drained
}

TEST(StreamBufferReadyTest, TwoInputsBothMustDrain) {
  ReadyTracker tracker;
  tracker.Reset(4);
  StreamBuffer left("l");
  StreamBuffer right("r");
  left.set_ready_tracker(&tracker, 1);
  right.set_ready_tracker(&tracker, 1);
  left.Push(Data(1));
  right.Push(Data(2));
  EXPECT_EQ(tracker.nonempty_inputs(1), 2u);
  left.Pop();
  EXPECT_TRUE(tracker.IsCandidate(1));
  right.Pop();
  EXPECT_FALSE(tracker.IsCandidate(1));
}

TEST(StreamBufferReadyTest, BatchOpsNotifyOnce) {
  ReadyTracker tracker;
  tracker.Reset(2);
  StreamBuffer buffer("b");
  buffer.set_ready_tracker(&tracker, 0);
  std::vector<Tuple> batch;
  for (Timestamp t = 0; t < 3; ++t) batch.push_back(Data(t));
  buffer.PushAll(std::move(batch));
  EXPECT_TRUE(tracker.IsCandidate(0));
  EXPECT_EQ(tracker.nonempty_inputs(0), 1u);
  buffer.DrainInto(nullptr);
  EXPECT_FALSE(tracker.IsCandidate(0));
  EXPECT_EQ(tracker.nonempty_inputs(0), 0u);
}

}  // namespace
}  // namespace dsms
