#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"

#include "common/clock.h"
#include "common/time.h"
#include "core/tuple.h"
#include "exec/dfs_executor.h"
#include "exec/round_robin_executor.h"
#include "graph/graph_builder.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"
#include "test_seed.h"

namespace dsms {
namespace {

/// End-to-end property sweep: the paper's union query without random
/// filters (so tuple conservation is exact), parameterized over strategy
/// (heartbeats / on-demand ETS / latent), executor (DFS / round-robin) and
/// seed.
class EndToEndPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<int /*strategy*/, int /*executor*/, uint64_t /*seed*/>> {
};

struct RunOutcome {
  std::vector<Tuple> delivered;
  uint64_t ingested = 0;
  uint64_t punct_delivered = 0;
};

RunOutcome RunPropertyScenario(int strategy, int executor_kind,
                               uint64_t seed) {
  // strategy: 0 = no ETS + heartbeats, 1 = on-demand, 2 = latent.
  TimestampKind kind =
      strategy == 2 ? TimestampKind::kLatent : TimestampKind::kInternal;
  GraphBuilder builder;
  Source* s1 = builder.AddSource("S1", kind);
  Source* s2 = builder.AddSource("S2", kind);
  Union* u = builder.AddUnion("U", kind != TimestampKind::kLatent);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s1, u);
  builder.Connect(s2, u);
  builder.Connect(u, sink);
  auto built = builder.Build();
  DSMS_CHECK_OK(built.status());
  std::unique_ptr<QueryGraph> graph = std::move(built).value();
  sink->set_collect(true);

  ExecConfig config;
  config.ets.mode = strategy == 1 ? EtsMode::kOnDemand : EtsMode::kNone;
  VirtualClock clock;
  std::unique_ptr<Executor> executor;
  if (executor_kind == 0) {
    executor = std::make_unique<DfsExecutor>(graph.get(), &clock, config);
  } else {
    executor = std::make_unique<RoundRobinExecutor>(graph.get(), &clock,
                                                    config, /*quantum=*/3);
  }
  Simulation sim(graph.get(), executor.get(), &clock);
  sim.AddFeed(s1, std::make_unique<PoissonProcess>(40.0, seed * 11 + 1));
  sim.AddFeed(s2, std::make_unique<PoissonProcess>(2.0, seed * 11 + 2));
  if (strategy == 0) {
    sim.AddHeartbeat(s1, 50 * kMillisecond);
    sim.AddHeartbeat(s2, 50 * kMillisecond, /*phase=*/7);
  }
  sim.Run(20 * kSecond);
  // Flush: one final generous punctuation on both streams releases any
  // stragglers, so conservation is exact.
  s1->InjectPunctuation(clock.now() + kSecond);
  s2->InjectPunctuation(clock.now() + kSecond);
  executor->RunUntilIdle();

  RunOutcome outcome;
  outcome.delivered = sink->collected();
  outcome.ingested = s1->tuples_ingested() + s2->tuples_ingested();
  outcome.punct_delivered = sink->punctuation_eliminated();
  return outcome;
}

TEST_P(EndToEndPropertyTest, EveryIngestedTupleIsDeliveredExactlyOnce) {
  auto [strategy, executor_kind, seed] = GetParam();
  DSMS_TRACE_SEED(seed);
  RunOutcome outcome = RunPropertyScenario(strategy, executor_kind, seed);
  EXPECT_EQ(outcome.delivered.size(), outcome.ingested);
  // Exactly once: (source, sequence) pairs are unique.
  std::vector<std::pair<int32_t, uint64_t>> ids;
  ids.reserve(outcome.delivered.size());
  for (const Tuple& t : outcome.delivered) {
    ids.emplace_back(t.source_id(), t.sequence());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

TEST_P(EndToEndPropertyTest, OutputTimestampsNondecreasing) {
  auto [strategy, executor_kind, seed] = GetParam();
  DSMS_TRACE_SEED(seed);
  if (strategy == 2) GTEST_SKIP() << "latent tuples carry no timestamps";
  RunOutcome outcome = RunPropertyScenario(strategy, executor_kind, seed);
  Timestamp previous = kMinTimestamp;
  for (const Tuple& t : outcome.delivered) {
    ASSERT_TRUE(t.has_timestamp());
    EXPECT_GE(t.timestamp(), previous);
    previous = t.timestamp();
  }
}

TEST_P(EndToEndPropertyTest, PerSourceSequenceOrderPreserved) {
  auto [strategy, executor_kind, seed] = GetParam();
  DSMS_TRACE_SEED(seed);
  RunOutcome outcome = RunPropertyScenario(strategy, executor_kind, seed);
  uint64_t next_seq[2] = {0, 0};
  for (const Tuple& t : outcome.delivered) {
    ASSERT_GE(t.source_id(), 0);
    ASSERT_LT(t.source_id(), 2);
    EXPECT_EQ(t.sequence(), next_seq[t.source_id()]);
    ++next_seq[t.source_id()];
  }
}

TEST_P(EndToEndPropertyTest, NoPunctuationEverReachesUsers) {
  auto [strategy, executor_kind, seed] = GetParam();
  DSMS_TRACE_SEED(seed);
  RunOutcome outcome = RunPropertyScenario(strategy, executor_kind, seed);
  for (const Tuple& t : outcome.delivered) EXPECT_TRUE(t.is_data());
}

TEST_P(EndToEndPropertyTest, LatencyIsNonNegative) {
  auto [strategy, executor_kind, seed] = GetParam();
  DSMS_TRACE_SEED(seed);
  RunOutcome outcome = RunPropertyScenario(strategy, executor_kind, seed);
  // Emission happens at or after arrival: arrival_time <= any later clock.
  // (Checked indirectly: arrival times are set and sane.)
  for (const Tuple& t : outcome.delivered) {
    EXPECT_GE(t.arrival_time(), 0);
  }
}

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<int, int, uint64_t>>& info) {
  static const char* kStrategies[] = {"Heartbeat", "OnDemand", "Latent"};
  static const char* kExecutors[] = {"Dfs", "RoundRobin"};
  return std::string(kStrategies[std::get<0>(info.param)]) +
         kExecutors[std::get<1>(info.param)] + "Seed" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEndPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2),  // heartbeat/on-demand/latent
                       ::testing::Values(0, 1),     // DFS / round-robin
                       // Override the sweep with DSMS_TEST_SEED=<n> to
                       // replay one seed (see tests/test_seed.h).
                       ::testing::ValuesIn(test::TestSeedsOr({1, 2, 3, 4}))),
    SweepName);

}  // namespace
}  // namespace dsms
