// bench_util.h argument parsing: strict rejection of unknown flags and —
// the regression of interest — a value-taking flag with nothing after it
// must be reported by name (not as "unknown argument") and exit 2.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../bench/bench_util.h"

namespace dsms {
namespace {

/// Runs ParseArgs on a writable copy of `args` (argv[0] included).
bench::BenchOptions Parse(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  return bench::ParseArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchArgsTest, ParsesAllFlags) {
  bench::BenchOptions options =
      Parse({"--csv", "--quick", "--seed", "7", "--json", "/tmp/x.json",
             "--trace", "/tmp/x.trace.json"});
  EXPECT_TRUE(options.csv);
  EXPECT_TRUE(options.quick);
  EXPECT_EQ(options.seed, 7u);
  EXPECT_EQ(options.json_path, "/tmp/x.json");
  EXPECT_EQ(options.trace_path, "/tmp/x.trace.json");
}

TEST(BenchArgsTest, DefaultsWhenNoFlags) {
  bench::BenchOptions options = Parse({});
  EXPECT_FALSE(options.csv);
  EXPECT_FALSE(options.quick);
  EXPECT_EQ(options.seed, 42u);
  EXPECT_TRUE(options.json_path.empty());
  EXPECT_TRUE(options.trace_path.empty());
}

TEST(BenchArgsTest, UnknownFlagExits2) {
  EXPECT_EXIT(Parse({"--bogus"}), ::testing::ExitedWithCode(2),
              "unknown argument: --bogus");
}

TEST(BenchArgsTest, HelpExits0) {
  // The listing itself goes to stdout (EXPECT_EXIT only matches stderr);
  // what this pins down is the exit path: help is code 0, errors code 2.
  EXPECT_EXIT(Parse({"--help"}), ::testing::ExitedWithCode(0), "");
}

TEST(BenchArgsTest, MissingValueIsReportedByFlagName) {
  // Regression: these used to fall through to "unknown argument: --seed".
  EXPECT_EXIT(Parse({"--seed"}), ::testing::ExitedWithCode(2),
              "missing value for --seed");
  EXPECT_EXIT(Parse({"--json"}), ::testing::ExitedWithCode(2),
              "missing value for --json");
  EXPECT_EXIT(Parse({"--quick", "--trace"}), ::testing::ExitedWithCode(2),
              "missing value for --trace");
}

}  // namespace
}  // namespace dsms
