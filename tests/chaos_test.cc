// Fault-injection matrix: every FaultKind against every executor, with all
// runtime defenses armed. The invariants are the engine's graceful-
// degradation contract: runs terminate, sink output stays timestamp-ordered,
// injected faults are visible in the stats (never silent), and with the
// injectors off the engine is byte-identical to the fault-free build.

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/time.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "metrics/order_validator.h"
#include "sim/fault_injector.h"
#include "sim/scenario.h"
#include "test_seed.h"

namespace dsms {
namespace {

/// Short union run with every defense armed: liveness watchdog, bounded
/// buffers with shedding, and quarantine for order violations.
ScenarioConfig ChaosConfig(FaultKind kind, int executor, uint64_t seed) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.executor = static_cast<ExecutorKind>(executor);
  config.horizon = 90 * kSecond;
  config.warmup = 0;
  config.seed = seed;

  config.fault.kind = kind;
  config.fault.start = 30 * kSecond;
  config.fault.duration = 30 * kSecond;
  config.fault.probability = 0.5;
  // Punctuation faults need a source that actually earns punctuation: the
  // slow stream is the one the union keeps demanding ETS from. Everything
  // else targets the fast stream so the fault window sees real traffic.
  const bool punct_fault = kind == FaultKind::kDuplicatePunct ||
                           kind == FaultKind::kRegressingPunct;
  config.fault_target = punct_fault ? 1 : 0;
  if (kind == FaultKind::kSkewViolation) {
    config.ts_kind = TimestampKind::kExternal;
    config.skew_bound = kSecond;
  }

  if (kind == FaultKind::kFlap) {
    // Alternating 10s dead / 10s alive phases on the fast stream: two full
    // die-and-revive cycles inside the window, each revival a frontier
    // violation (the deep quarantine/re-admission walk lives in
    // frontier_test; here the contract is "the run absorbs it").
    config.fault.punct_period = 10 * kSecond;
    config.fault_target = 0;
  }

  config.watchdog_horizon = 5 * kSecond;
  config.buffer_capacity = 256;
  config.overload = OverloadPolicy::kShedOldest;
  config.violations = ViolationPolicy::kQuarantine;
  return config;
}

class ChaosMatrixTest
    : public ::testing::TestWithParam<std::tuple<int /*kind*/,
                                                 int /*executor*/>> {};

TEST_P(ChaosMatrixTest, TerminatesOrderedAndVisible) {
  auto [kind_index, executor] = GetParam();
  const FaultKind kind = static_cast<FaultKind>(kind_index);
  const uint64_t seed = test::TestSeedOr(42);
  DSMS_TRACE_SEED(seed);

  // Returning at all is the first assertion: no fault may wedge the run.
  ScenarioResult result = RunScenario(ChaosConfig(kind, executor, seed));

  // The sink never sees out-of-order data, whatever was injected upstream.
  EXPECT_EQ(result.order_violations, 0u);
  EXPECT_GT(result.tuples_delivered, 0u);

  if (kind == FaultKind::kNone) {
    EXPECT_EQ(result.fault_events, 0u);
    EXPECT_EQ(result.quarantined, 0u);
    EXPECT_FALSE(result.degraded);
  } else {
    // A configured fault must be visible in the report, never silent.
    EXPECT_GT(result.fault_events, 0u);
  }

  // Order-violating faults must land in quarantine, not downstream.
  if (kind == FaultKind::kDisorder || kind == FaultKind::kSkewViolation ||
      kind == FaultKind::kRegressingPunct) {
    EXPECT_GT(result.quarantined, 0u);
    EXPECT_EQ(result.buffer_order_violations, result.quarantined);
  }

  // Bounded buffers: the high-water mark respects the configured cap.
  EXPECT_LE(result.max_buffer_hwm, 256u);
}

std::string ChaosName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kKinds[] = {"None",     "Stall",    "Death",
                                 "Burst",    "Disorder", "Skew",
                                 "DupPunct", "RegressPunct", "Flap"};
  static const char* kExecutors[] = {"Dfs", "RoundRobin", "Greedy"};
  return std::string(kKinds[std::get<0>(info.param)]) +
         kExecutors[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsAllExecutors, ChaosMatrixTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(0, 1, 2)),
    ChaosName);

// --- Sharded execution under faults ------------------------------------------

/// The chaos contract at shards > 1: for every fault kind (including flap,
/// whose die-and-revive cycles exercise frontier revival across shard
/// boundaries), a deterministic sharded run must produce a sink byte-stream
/// identical to the single-shard scalar oracle — the injected fault, the
/// quarantine walk, and the shedding all land on the same tuples.
class ChaosShardedTest
    : public ::testing::TestWithParam<std::tuple<int /*kind*/,
                                                 int /*shards*/>> {};

TEST_P(ChaosShardedTest, DeterministicShardsMatchScalarOracle) {
  auto [kind_index, shards] = GetParam();
  const FaultKind kind = static_cast<FaultKind>(kind_index);
  const uint64_t seed = test::TestSeedOr(42);
  DSMS_TRACE_SEED(seed);

  ScenarioConfig config = ChaosConfig(kind, /*executor=*/0, seed);
  config.record_trace = true;
  ScenarioResult oracle = RunScenario(config);

  config.shards = shards;
  ScenarioResult sharded = RunScenario(config);

  EXPECT_EQ(sharded.sink_digest, oracle.sink_digest);
  EXPECT_EQ(sharded.trace_hash, oracle.trace_hash);
  EXPECT_EQ(sharded.trace_events, oracle.trace_events);
  EXPECT_EQ(sharded.tuples_delivered, oracle.tuples_delivered);
  EXPECT_EQ(sharded.order_violations, 0u);
  EXPECT_EQ(sharded.fault_events, oracle.fault_events);
  EXPECT_EQ(sharded.quarantined, oracle.quarantined);
  EXPECT_EQ(sharded.shed_tuples, oracle.shed_tuples);
  EXPECT_EQ(sharded.watchdog_ets, oracle.watchdog_ets);
  EXPECT_EQ(sharded.degraded, oracle.degraded);
  EXPECT_EQ(sharded.max_buffer_hwm, oracle.max_buffer_hwm);
  EXPECT_EQ(sharded.shards_used, static_cast<uint64_t>(shards));
}

std::string ShardedChaosName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kKinds[] = {"None",     "Stall",    "Death",
                                 "Burst",    "Disorder", "Skew",
                                 "DupPunct", "RegressPunct", "Flap"};
  return std::string(kKinds[std::get<0>(info.param)]) + "Shards" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsSharded, ChaosShardedTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(2, 4)),
    ShardedChaosName);

// --- Watchdog ----------------------------------------------------------------

/// With ETS disabled entirely (scenario A), a stalled slow stream wedges the
/// union until the next data tuple. The watchdog's fallback ETS is the only
/// unwedging mechanism — it must fire and mark the source degraded.
TEST(ChaosWatchdogTest, UnwedgesStalledStreamWithoutEts) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kNoEts;
  config.horizon = 90 * kSecond;
  config.warmup = 0;
  config.fault.kind = FaultKind::kStall;
  config.fault.start = 20 * kSecond;
  config.fault.duration = 40 * kSecond;
  config.fault_target = 1;  // the slow stream
  config.watchdog_horizon = 5 * kSecond;

  ScenarioResult result = RunScenario(config);
  EXPECT_GT(result.watchdog_ets, 0u);
  EXPECT_TRUE(result.degraded);
  EXPECT_GT(result.tuples_delivered, 0u);
  EXPECT_EQ(result.order_violations, 0u);
}

/// Source death is a stall that never ends: the watchdog must keep the rest
/// of the graph draining forever after.
TEST(ChaosWatchdogTest, SourceDeathDoesNotWedgeTheGraph) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kNoEts;
  config.horizon = 90 * kSecond;
  config.warmup = 0;
  config.fault.kind = FaultKind::kDeath;
  config.fault.start = 10 * kSecond;
  config.fault_target = 1;
  config.watchdog_horizon = 5 * kSecond;

  ScenarioResult result = RunScenario(config);
  EXPECT_GT(result.watchdog_ets, 0u);
  EXPECT_TRUE(result.degraded);
  // The fast stream keeps flowing: most of its ~50/s tuples reach the sink.
  EXPECT_GT(result.tuples_delivered, 1000u);
  EXPECT_EQ(result.order_violations, 0u);
}

/// EtsPolicy::min_interval throttles the regular on-demand path; the
/// watchdog must bypass the throttle or a stalled source wedges the union
/// for the whole interval (the exact failure the watchdog exists for).
TEST(ChaosWatchdogTest, FallbackEtsBypassesMinIntervalThrottle) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.horizon = 90 * kSecond;
  config.warmup = 0;
  config.ets_min_interval = 600 * kSecond;  // throttle for the whole run
  config.fault.kind = FaultKind::kStall;
  config.fault.start = 20 * kSecond;
  config.fault.duration = 40 * kSecond;
  config.fault_target = 1;

  ScenarioConfig with_watchdog = config;
  with_watchdog.watchdog_horizon = 5 * kSecond;

  ScenarioResult throttled = RunScenario(config);
  ScenarioResult guarded = RunScenario(with_watchdog);

  EXPECT_EQ(throttled.watchdog_ets, 0u);
  EXPECT_GT(guarded.watchdog_ets, 0u);
  // The watchdog's fallback bounds release tuples the throttled run holds
  // hostage until the horizon (a fair latency comparison is impossible:
  // the throttled run simply never delivers its stragglers).
  EXPECT_GT(guarded.tuples_delivered, throttled.tuples_delivered);
  EXPECT_EQ(guarded.order_violations, 0u);
}

// --- Bounded buffers ---------------------------------------------------------

/// Scenario A grows the fast arc into the thousands; kShedOldest must hold
/// every arc at the cap and account for everything it dropped.
TEST(ChaosOverloadTest, ShedOldestHoldsHighWaterMarkAtCap) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kNoEts;
  config.horizon = 60 * kSecond;
  config.warmup = 0;
  config.buffer_capacity = 64;
  config.overload = OverloadPolicy::kShedOldest;

  ScenarioResult result = RunScenario(config);
  EXPECT_LE(result.max_buffer_hwm, 64u);
  EXPECT_GT(result.shed_tuples, 0u);
  EXPECT_EQ(result.order_violations, 0u);
}

/// kBlockSource applies backpressure instead: arrivals are deferred while
/// the arc is full, so nothing is shed and the cap still holds.
TEST(ChaosOverloadTest, BlockSourceDefersArrivalsInsteadOfShedding) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kNoEts;
  config.horizon = 60 * kSecond;
  config.warmup = 0;
  config.buffer_capacity = 64;
  config.overload = OverloadPolicy::kBlockSource;

  ScenarioResult result = RunScenario(config);
  EXPECT_LE(result.max_buffer_hwm, 64u);
  EXPECT_EQ(result.shed_tuples, 0u);
  EXPECT_EQ(result.order_violations, 0u);
  EXPECT_GT(result.tuples_delivered, 0u);
}

// --- Injectors off == seed behaviour ----------------------------------------

/// Arming the robustness plumbing with every knob at its default must not
/// perturb a single buffer event: the trace hash is the proof.
TEST(ChaosTraceTest, InjectorsOffIsByteIdenticalToDefaults) {
  ScenarioConfig plain;
  plain.horizon = 60 * kSecond;
  plain.warmup = 0;
  plain.record_trace = true;

  ScenarioConfig armed = plain;
  armed.fault.kind = FaultKind::kNone;  // explicit no-op injector
  armed.fault_target = 1;
  armed.watchdog_horizon = 0;
  armed.buffer_capacity = 0;
  armed.overload = OverloadPolicy::kGrow;
  armed.violations = ViolationPolicy::kCount;

  ScenarioResult a = RunScenario(plain);
  ScenarioResult b = RunScenario(armed);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.tuples_delivered, b.tuples_delivered);
  EXPECT_EQ(b.fault_events, 0u);
  EXPECT_EQ(b.watchdog_ets, 0u);
}

// --- Disk faults against the state store -------------------------------------

/// A per-test scratch spill directory, wiped before use.
std::string FreshSpillDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/dsms_chaos_spill_" + tag;
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") {
        std::remove((dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
  return dir;
}

/// Join scenario over a state store: `spill` gives a tiny hot budget so
/// most window state lives in block files; otherwise the budget is huge
/// and the store never touches disk.
ScenarioConfig DiskChaosConfig(FaultKind kind, bool spill,
                               const std::string& dir, uint64_t seed) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.shape = QueryShape::kJoin;
  config.horizon = 60 * kSecond;
  config.warmup = 0;
  config.seed = seed;
  config.join_window = 4 * kSecond;
  config.state_spill_dir = dir;
  config.state_mem_budget = spill ? 2048 : (1ull << 30);
  config.overload = OverloadPolicy::kShedOldest;
  config.fault.kind = kind;
  config.fault.start = 10 * kSecond;
  config.fault.duration = 30 * kSecond;
  config.fault.probability = 1.0;
  config.fault.magnitude = kMillisecond;
  return config;
}

class ChaosDiskTest
    : public ::testing::TestWithParam<std::tuple<int /*kind*/,
                                                 int /*spill*/>> {};

TEST_P(ChaosDiskTest, TerminatesOrderedAndVisible) {
  auto [kind_index, spill] = GetParam();
  const FaultKind kind = static_cast<FaultKind>(kind_index);
  const uint64_t seed = test::TestSeedOr(42);
  DSMS_TRACE_SEED(seed);

  std::string dir = FreshSpillDir(
      std::to_string(kind_index) + "_" + std::to_string(spill));
  ScenarioResult result =
      RunScenario(DiskChaosConfig(kind, spill != 0, dir, seed));

  EXPECT_EQ(result.order_violations, 0u);
  EXPECT_GT(result.tuples_delivered, 0u);
  if (spill != 0) {
    // The tiny budget forced real disk traffic, so the armed fault fired
    // and is visible in the stats — never silent.
    EXPECT_GT(result.storage.spills + result.storage.spill_failures, 0u);
    EXPECT_GT(result.fault_events, 0u);
    if (kind == FaultKind::kDiskStall) {
      EXPECT_GT(result.storage.stalls, 0u);
      EXPECT_GT(result.storage.stall_time, 0);
    } else {
      EXPECT_GT(result.storage.spill_failures, 0u);
    }
  } else {
    // All state fits the huge budget: no disk work, nothing to fault.
    EXPECT_EQ(result.storage.spills, 0u);
    EXPECT_EQ(result.storage.loads, 0u);
    EXPECT_EQ(result.fault_events, 0u);
  }
}

std::string DiskChaosName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  std::string kind = std::get<0>(info.param) == 9 ? "DiskStall" : "DiskFail";
  return kind + (std::get<1>(info.param) != 0 ? "Spill" : "InMemory");
}

INSTANTIATE_TEST_SUITE_P(
    DiskFaults, ChaosDiskTest,
    ::testing::Combine(::testing::Values(9, 10),  // kDiskStall, kDiskFail
                       ::testing::Values(0, 1)),
    DiskChaosName);

/// With the injectors off, a spilling run must be byte-identical at the
/// sink to an unlimited-memory one: spilling changes where state lives,
/// never what the query produces.
TEST(ChaosDiskTest, SpillByteIdenticalToInMemoryWithFaultsOff) {
  const uint64_t seed = test::TestSeedOr(42);
  DSMS_TRACE_SEED(seed);

  ScenarioConfig in_memory = DiskChaosConfig(
      FaultKind::kNone, /*spill=*/false, FreshSpillDir("id_mem"), seed);
  ScenarioConfig spilling = DiskChaosConfig(
      FaultKind::kNone, /*spill=*/true, FreshSpillDir("id_spill"), seed);

  ScenarioResult a = RunScenario(in_memory);
  ScenarioResult b = RunScenario(spilling);

  EXPECT_EQ(a.storage.spills, 0u);
  EXPECT_GT(b.storage.spills, 0u);  // the comparison is real
  EXPECT_EQ(b.sink_digest, a.sink_digest);
  EXPECT_EQ(b.tuples_delivered, a.tuples_delivered);
  EXPECT_EQ(b.order_violations, 0u);
}

/// Deterministic sharded execution with the state store active must still
/// replicate the scalar schedule byte for byte, spilling and all.
TEST(ChaosDiskTest, SpillingShardedRunMatchesScalarOracle) {
  const uint64_t seed = test::TestSeedOr(42);
  DSMS_TRACE_SEED(seed);

  ScenarioConfig config = DiskChaosConfig(
      FaultKind::kNone, /*spill=*/true, FreshSpillDir("sharded"), seed);
  ScenarioResult oracle = RunScenario(config);

  config.state_spill_dir = FreshSpillDir("sharded4");
  config.shards = 4;
  ScenarioResult sharded = RunScenario(config);

  EXPECT_GT(oracle.storage.spills, 0u);
  EXPECT_EQ(sharded.sink_digest, oracle.sink_digest);
  EXPECT_EQ(sharded.tuples_delivered, oracle.tuples_delivered);
  EXPECT_EQ(sharded.shards_used, 4u);
}

// --- Violation reporting -----------------------------------------------------

/// first_violation() names the arc and the offending tuple so a report is
/// actionable without a debugger.
TEST(ChaosValidatorTest, FirstViolationNamesArcAndTuple) {
  StreamBuffer buffer("filter->union");
  OrderValidator validator;
  validator.set_policy(ViolationPolicy::kQuarantine);
  buffer.AddListener(&validator);

  Tuple on_time = Tuple::MakeData(1000, {});
  on_time.set_source_id(3);
  on_time.set_sequence(7);
  EXPECT_TRUE(buffer.Push(std::move(on_time)));
  Tuple late = Tuple::MakeData(400, {});
  late.set_source_id(3);
  late.set_sequence(8);
  EXPECT_FALSE(buffer.Push(std::move(late)));

  EXPECT_EQ(validator.violations(), 1u);
  EXPECT_EQ(validator.quarantined(), 1u);
  ASSERT_EQ(validator.dead_letter().size(), 1u);
  EXPECT_EQ(validator.dead_letter()[0].sequence(), 8u);
  const std::string& report = validator.first_violation();
  EXPECT_NE(report.find("filter->union"), std::string::npos);
  EXPECT_NE(report.find("source 3"), std::string::npos);
  EXPECT_NE(report.find("seq 8"), std::string::npos);
  EXPECT_EQ(buffer.size(), 1u);  // the late tuple never entered the arc
}

}  // namespace
}  // namespace dsms
