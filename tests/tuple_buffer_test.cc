#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/stream_buffer.h"
#include "core/tsm_register.h"
#include "core/tuple.h"
#include "core/value.h"

namespace dsms {
namespace {

TEST(TupleTest, DataTupleBasics) {
  Tuple t = Tuple::MakeData(1500, {Value(int64_t{1}), Value("x")});
  EXPECT_TRUE(t.is_data());
  EXPECT_FALSE(t.is_punctuation());
  EXPECT_TRUE(t.has_timestamp());
  EXPECT_EQ(t.timestamp(), 1500);
  EXPECT_EQ(t.num_values(), 2);
  EXPECT_EQ(t.value(0).int64_value(), 1);
  EXPECT_EQ(t.timestamp_kind(), TimestampKind::kInternal);
}

TEST(TupleTest, ExternalKind) {
  Tuple t = Tuple::MakeData(5, {}, TimestampKind::kExternal);
  EXPECT_EQ(t.timestamp_kind(), TimestampKind::kExternal);
}

TEST(TupleTest, LatentTupleHasNoTimestamp) {
  Tuple t = Tuple::MakeLatent({Value(int64_t{9})});
  EXPECT_TRUE(t.is_data());
  EXPECT_FALSE(t.has_timestamp());
  EXPECT_EQ(t.timestamp_kind(), TimestampKind::kLatent);
  EXPECT_DEATH(t.timestamp(), "");
}

TEST(TupleTest, LatentStampingOnTheFly) {
  Tuple t = Tuple::MakeLatent({});
  t.set_timestamp(777);
  EXPECT_TRUE(t.has_timestamp());
  EXPECT_EQ(t.timestamp(), 777);
}

TEST(TupleTest, PunctuationBasics) {
  Tuple p = Tuple::MakePunctuation(2000);
  EXPECT_TRUE(p.is_punctuation());
  EXPECT_EQ(p.timestamp(), 2000);
  EXPECT_EQ(p.num_values(), 0);
}

TEST(TupleTest, LineageFields) {
  Tuple t = Tuple::MakeData(10, {});
  t.set_arrival_time(9);
  t.set_source_id(3);
  t.set_sequence(17);
  EXPECT_EQ(t.arrival_time(), 9);
  EXPECT_EQ(t.source_id(), 3);
  EXPECT_EQ(t.sequence(), 17u);
}

TEST(TupleTest, ValueIndexOutOfRangeDies) {
  Tuple t = Tuple::MakeData(1, {Value(int64_t{1})});
  EXPECT_DEATH(t.value(1), "");
}

TEST(TupleTest, ToStringFormats) {
  EXPECT_EQ(Tuple::MakeData(15, {Value(int64_t{2})}).ToString(), "data@15[2]");
  EXPECT_EQ(Tuple::MakePunctuation(7).ToString(), "punct@7");
  EXPECT_EQ(Tuple::MakeLatent({}).ToString(), "data@latent[]");
}

TEST(TupleTest, MakeDataRejectsLatentKind) {
  EXPECT_DEATH(Tuple::MakeData(1, {}, TimestampKind::kLatent), "");
}

TEST(TimestampKindTest, Names) {
  EXPECT_STREQ(TimestampKindToString(TimestampKind::kExternal), "external");
  EXPECT_STREQ(TimestampKindToString(TimestampKind::kInternal), "internal");
  EXPECT_STREQ(TimestampKindToString(TimestampKind::kLatent), "latent");
}

TEST(StreamBufferTest, FifoOrder) {
  StreamBuffer buffer("b");
  buffer.Push(Tuple::MakeData(1, {}));
  buffer.Push(Tuple::MakeData(2, {}));
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.Front().timestamp(), 1);
  EXPECT_EQ(buffer.Pop().timestamp(), 1);
  EXPECT_EQ(buffer.Pop().timestamp(), 2);
  EXPECT_TRUE(buffer.empty());
}

TEST(StreamBufferTest, CountsByKind) {
  StreamBuffer buffer("b");
  buffer.Push(Tuple::MakeData(1, {}));
  buffer.Push(Tuple::MakePunctuation(2));
  buffer.Push(Tuple::MakeData(3, {}));
  EXPECT_EQ(buffer.total_pushed(), 3u);
  EXPECT_EQ(buffer.data_pushed(), 2u);
  EXPECT_EQ(buffer.punctuation_pushed(), 1u);
  EXPECT_EQ(buffer.data_size(), 2u);
  buffer.Pop();  // data
  EXPECT_EQ(buffer.data_size(), 1u);
  buffer.Pop();  // punctuation
  EXPECT_EQ(buffer.data_size(), 1u);
}

TEST(StreamBufferTest, PopEmptyDies) {
  StreamBuffer buffer("b");
  EXPECT_DEATH(buffer.Pop(), "");
  EXPECT_DEATH(buffer.Front(), "");
}

class CountingListener : public BufferListener {
 public:
  void OnPush(const StreamBuffer&, const Tuple&) override { ++pushes; }
  void OnPop(const StreamBuffer&, const Tuple&) override { ++pops; }
  int pushes = 0;
  int pops = 0;
};

TEST(StreamBufferTest, ListenerNotified) {
  StreamBuffer buffer("b");
  CountingListener listener;
  buffer.ReplaceListeners(&listener);
  buffer.Push(Tuple::MakeData(1, {}));
  buffer.Push(Tuple::MakePunctuation(2));
  buffer.Pop();
  EXPECT_EQ(listener.pushes, 2);
  EXPECT_EQ(listener.pops, 1);
  buffer.ReplaceListeners(nullptr);
  buffer.Pop();
  EXPECT_EQ(listener.pops, 1);
}

TEST(StreamBufferTest, NameAndId) {
  StreamBuffer buffer("F1->U");
  EXPECT_EQ(buffer.name(), "F1->U");
  EXPECT_EQ(buffer.id(), -1);
  buffer.set_id(4);
  EXPECT_EQ(buffer.id(), 4);
}

TEST(TsmRegisterTest, StartsUninitialized) {
  TsmRegister reg;
  EXPECT_FALSE(reg.initialized());
  EXPECT_EQ(reg.value(), kMinTimestamp);
}

TEST(TsmRegisterTest, ObserveAdvances) {
  TsmRegister reg;
  reg.Observe(10);
  EXPECT_TRUE(reg.initialized());
  EXPECT_EQ(reg.value(), 10);
  reg.Observe(20);
  EXPECT_EQ(reg.value(), 20);
}

TEST(TsmRegisterTest, StaleObservationsIgnored) {
  TsmRegister reg;
  reg.Observe(20);
  reg.Observe(10);  // simultaneous/stale: keep the max
  EXPECT_EQ(reg.value(), 20);
  reg.Observe(20);
  EXPECT_EQ(reg.value(), 20);
}

TEST(TsmRegisterTest, ValueSurvivesUntilNextUpdate) {
  // The core of the simultaneous-tuple fix: the register keeps the last
  // timestamp even after the tuple that set it was consumed.
  TsmRegister reg;
  reg.Observe(100);
  // ... tuple consumed; nothing else arrives ...
  EXPECT_EQ(reg.value(), 100);
}

TEST(TsmRegisterTest, ResetClears) {
  TsmRegister reg;
  reg.Observe(5);
  reg.Reset();
  EXPECT_FALSE(reg.initialized());
}

// Shed-then-restore accounting: after a kShedOldest buffer sheds, a
// checkpoint/restore cycle must round-trip total_pushed / data_pushed /
// punctuation_pushed (== total - data) and shed_tuples exactly, with the
// queued contents intact. Guards the RestoreSnapshot path the recovery
// manager drives.
TEST(StreamBufferTest, ShedCheckpointRestoreRoundTripsCounters) {
  StreamBuffer buffer("b");
  buffer.set_capacity_limit(3, OverloadPolicy::kShedOldest);
  buffer.Push(Tuple::MakeData(1, {}));
  buffer.Push(Tuple::MakePunctuation(2));
  buffer.Push(Tuple::MakeData(3, {}));
  buffer.Push(Tuple::MakeData(4, {}));  // sheds data@1
  buffer.Push(Tuple::MakeData(5, {}));  // sheds punct@2
  ASSERT_EQ(buffer.size(), 3u);
  ASSERT_EQ(buffer.shed_tuples(), 2u);
  ASSERT_EQ(buffer.total_pushed(), 5u);
  ASSERT_EQ(buffer.data_pushed(), 4u);
  ASSERT_EQ(buffer.punctuation_pushed(), 1u);
  const size_t high_water = buffer.high_water_mark();

  // Checkpoint: what RecoveryManager::SerializeBuffer captures.
  std::vector<Tuple> image;
  buffer.SnapshotTuples(&image);
  ASSERT_EQ(image.size(), 3u);

  StreamBuffer restored("b");
  restored.RestoreSnapshot(std::move(image), buffer.total_pushed(),
                           buffer.data_pushed(), buffer.shed_tuples(),
                           buffer.vetoed_pushes(), high_water);
  EXPECT_EQ(restored.total_pushed(), 5u);
  EXPECT_EQ(restored.data_pushed(), 4u);
  EXPECT_EQ(restored.punctuation_pushed(),
            restored.total_pushed() - restored.data_pushed());
  EXPECT_EQ(restored.punctuation_pushed(), 1u);
  EXPECT_EQ(restored.shed_tuples(), 2u);
  EXPECT_EQ(restored.high_water_mark(), high_water);
  EXPECT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored.data_size(), 3u);  // both punctuations left the queue
  EXPECT_EQ(restored.Pop().timestamp(), 3);
  EXPECT_EQ(restored.Pop().timestamp(), 4);
  EXPECT_EQ(restored.Pop().timestamp(), 5);
}

// A snapshot claiming more data than total pushes would make
// punctuation_pushed() underflow; RestoreSnapshot must reject it.
TEST(StreamBufferTest, RestoreSnapshotRejectsInconsistentCounters) {
  StreamBuffer buffer("b");
  EXPECT_DEATH(buffer.RestoreSnapshot({}, /*total_pushed=*/1,
                                      /*data_pushed=*/2, /*shed_tuples=*/0,
                                      /*vetoed_pushes=*/0, /*high_water=*/0),
               "");
}

// A restored high-water mark can never sit below the restored occupancy.
TEST(StreamBufferTest, RestoreSnapshotClampsHighWaterToOccupancy) {
  std::vector<Tuple> image;
  image.push_back(Tuple::MakeData(1, {}));
  image.push_back(Tuple::MakeData(2, {}));
  StreamBuffer restored("b");
  restored.RestoreSnapshot(std::move(image), /*total_pushed=*/2,
                           /*data_pushed=*/2, /*shed_tuples=*/0,
                           /*vetoed_pushes=*/0, /*high_water=*/0);
  EXPECT_EQ(restored.high_water_mark(), 2u);
}

// Cross-shard diversion: an installed diverter intercepts Push before any
// buffer state changes; DeliverDiverted later applies full bookkeeping.
TEST(StreamBufferTest, DiverterInterceptsPushUntilDelivered) {
  struct Capture : BufferDiverter {
    std::vector<Tuple> taken;
    bool accept = true;
    bool Divert(StreamBuffer*, Tuple&& tuple) override {
      if (!accept) return false;
      taken.push_back(std::move(tuple));
      return true;
    }
  } diverter;
  StreamBuffer buffer("b");
  buffer.set_diverter(&diverter);
  EXPECT_TRUE(buffer.Push(Tuple::MakeData(1, {})));
  EXPECT_EQ(buffer.size(), 0u);          // producer side: nothing landed
  EXPECT_EQ(buffer.total_pushed(), 0u);  // no counter moved either
  ASSERT_EQ(diverter.taken.size(), 1u);

  buffer.DeliverDiverted(std::move(diverter.taken[0]));
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.total_pushed(), 1u);
  EXPECT_EQ(buffer.Front().timestamp(), 1);

  // A declining diverter leaves the push to complete locally, intact.
  diverter.accept = false;
  EXPECT_TRUE(buffer.Push(Tuple::MakeData(7, {Value(int64_t{42})})));
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.total_pushed(), 2u);
}

}  // namespace
}  // namespace dsms
