#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/stream_buffer.h"
#include "core/tsm_register.h"
#include "core/tuple.h"
#include "core/value.h"

namespace dsms {
namespace {

TEST(TupleTest, DataTupleBasics) {
  Tuple t = Tuple::MakeData(1500, {Value(int64_t{1}), Value("x")});
  EXPECT_TRUE(t.is_data());
  EXPECT_FALSE(t.is_punctuation());
  EXPECT_TRUE(t.has_timestamp());
  EXPECT_EQ(t.timestamp(), 1500);
  EXPECT_EQ(t.num_values(), 2);
  EXPECT_EQ(t.value(0).int64_value(), 1);
  EXPECT_EQ(t.timestamp_kind(), TimestampKind::kInternal);
}

TEST(TupleTest, ExternalKind) {
  Tuple t = Tuple::MakeData(5, {}, TimestampKind::kExternal);
  EXPECT_EQ(t.timestamp_kind(), TimestampKind::kExternal);
}

TEST(TupleTest, LatentTupleHasNoTimestamp) {
  Tuple t = Tuple::MakeLatent({Value(int64_t{9})});
  EXPECT_TRUE(t.is_data());
  EXPECT_FALSE(t.has_timestamp());
  EXPECT_EQ(t.timestamp_kind(), TimestampKind::kLatent);
  EXPECT_DEATH(t.timestamp(), "");
}

TEST(TupleTest, LatentStampingOnTheFly) {
  Tuple t = Tuple::MakeLatent({});
  t.set_timestamp(777);
  EXPECT_TRUE(t.has_timestamp());
  EXPECT_EQ(t.timestamp(), 777);
}

TEST(TupleTest, PunctuationBasics) {
  Tuple p = Tuple::MakePunctuation(2000);
  EXPECT_TRUE(p.is_punctuation());
  EXPECT_EQ(p.timestamp(), 2000);
  EXPECT_EQ(p.num_values(), 0);
}

TEST(TupleTest, LineageFields) {
  Tuple t = Tuple::MakeData(10, {});
  t.set_arrival_time(9);
  t.set_source_id(3);
  t.set_sequence(17);
  EXPECT_EQ(t.arrival_time(), 9);
  EXPECT_EQ(t.source_id(), 3);
  EXPECT_EQ(t.sequence(), 17u);
}

TEST(TupleTest, ValueIndexOutOfRangeDies) {
  Tuple t = Tuple::MakeData(1, {Value(int64_t{1})});
  EXPECT_DEATH(t.value(1), "");
}

TEST(TupleTest, ToStringFormats) {
  EXPECT_EQ(Tuple::MakeData(15, {Value(int64_t{2})}).ToString(), "data@15[2]");
  EXPECT_EQ(Tuple::MakePunctuation(7).ToString(), "punct@7");
  EXPECT_EQ(Tuple::MakeLatent({}).ToString(), "data@latent[]");
}

TEST(TupleTest, MakeDataRejectsLatentKind) {
  EXPECT_DEATH(Tuple::MakeData(1, {}, TimestampKind::kLatent), "");
}

TEST(TimestampKindTest, Names) {
  EXPECT_STREQ(TimestampKindToString(TimestampKind::kExternal), "external");
  EXPECT_STREQ(TimestampKindToString(TimestampKind::kInternal), "internal");
  EXPECT_STREQ(TimestampKindToString(TimestampKind::kLatent), "latent");
}

TEST(StreamBufferTest, FifoOrder) {
  StreamBuffer buffer("b");
  buffer.Push(Tuple::MakeData(1, {}));
  buffer.Push(Tuple::MakeData(2, {}));
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.Front().timestamp(), 1);
  EXPECT_EQ(buffer.Pop().timestamp(), 1);
  EXPECT_EQ(buffer.Pop().timestamp(), 2);
  EXPECT_TRUE(buffer.empty());
}

TEST(StreamBufferTest, CountsByKind) {
  StreamBuffer buffer("b");
  buffer.Push(Tuple::MakeData(1, {}));
  buffer.Push(Tuple::MakePunctuation(2));
  buffer.Push(Tuple::MakeData(3, {}));
  EXPECT_EQ(buffer.total_pushed(), 3u);
  EXPECT_EQ(buffer.data_pushed(), 2u);
  EXPECT_EQ(buffer.punctuation_pushed(), 1u);
  EXPECT_EQ(buffer.data_size(), 2u);
  buffer.Pop();  // data
  EXPECT_EQ(buffer.data_size(), 1u);
  buffer.Pop();  // punctuation
  EXPECT_EQ(buffer.data_size(), 1u);
}

TEST(StreamBufferTest, PopEmptyDies) {
  StreamBuffer buffer("b");
  EXPECT_DEATH(buffer.Pop(), "");
  EXPECT_DEATH(buffer.Front(), "");
}

class CountingListener : public BufferListener {
 public:
  void OnPush(const StreamBuffer&, const Tuple&) override { ++pushes; }
  void OnPop(const StreamBuffer&, const Tuple&) override { ++pops; }
  int pushes = 0;
  int pops = 0;
};

TEST(StreamBufferTest, ListenerNotified) {
  StreamBuffer buffer("b");
  CountingListener listener;
  buffer.ReplaceListeners(&listener);
  buffer.Push(Tuple::MakeData(1, {}));
  buffer.Push(Tuple::MakePunctuation(2));
  buffer.Pop();
  EXPECT_EQ(listener.pushes, 2);
  EXPECT_EQ(listener.pops, 1);
  buffer.ReplaceListeners(nullptr);
  buffer.Pop();
  EXPECT_EQ(listener.pops, 1);
}

TEST(StreamBufferTest, NameAndId) {
  StreamBuffer buffer("F1->U");
  EXPECT_EQ(buffer.name(), "F1->U");
  EXPECT_EQ(buffer.id(), -1);
  buffer.set_id(4);
  EXPECT_EQ(buffer.id(), 4);
}

TEST(TsmRegisterTest, StartsUninitialized) {
  TsmRegister reg;
  EXPECT_FALSE(reg.initialized());
  EXPECT_EQ(reg.value(), kMinTimestamp);
}

TEST(TsmRegisterTest, ObserveAdvances) {
  TsmRegister reg;
  reg.Observe(10);
  EXPECT_TRUE(reg.initialized());
  EXPECT_EQ(reg.value(), 10);
  reg.Observe(20);
  EXPECT_EQ(reg.value(), 20);
}

TEST(TsmRegisterTest, StaleObservationsIgnored) {
  TsmRegister reg;
  reg.Observe(20);
  reg.Observe(10);  // simultaneous/stale: keep the max
  EXPECT_EQ(reg.value(), 20);
  reg.Observe(20);
  EXPECT_EQ(reg.value(), 20);
}

TEST(TsmRegisterTest, ValueSurvivesUntilNextUpdate) {
  // The core of the simultaneous-tuple fix: the register keeps the last
  // timestamp even after the tuple that set it was consumed.
  TsmRegister reg;
  reg.Observe(100);
  // ... tuple consumed; nothing else arrives ...
  EXPECT_EQ(reg.value(), 100);
}

TEST(TsmRegisterTest, ResetClears) {
  TsmRegister reg;
  reg.Observe(5);
  reg.Reset();
  EXPECT_FALSE(reg.initialized());
}

}  // namespace
}  // namespace dsms
