#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "core/value.h"
#include "operators/operator.h"
#include "operators/union_op.h"

namespace dsms {
namespace {

Tuple DataTuple(Timestamp ts, int64_t v) {
  return Tuple::MakeData(ts, {Value(v)});
}

struct UnionRig {
  UnionRig(int inputs, bool ordered) : op("u", ordered) {
    for (int i = 0; i < inputs; ++i) {
      ins.push_back(std::make_unique<StreamBuffer>("in"));
      op.AddInput(ins.back().get());
    }
    op.AddOutput(&out);
  }

  /// Steps until no more progress; returns emitted tuples (drained).
  std::vector<Tuple> Drain(ManualExecContext& ctx) {
    for (int guard = 0; guard < 10000; ++guard) {
      StepResult r = op.Step(ctx);
      if (!r.more) break;
    }
    std::vector<Tuple> result;
    while (!out.empty()) result.push_back(out.Pop());
    return result;
  }

  std::vector<std::unique_ptr<StreamBuffer>> ins;
  StreamBuffer out{"out"};
  Union op;
};

TEST(UnionTest, MergesByTimestamp) {
  UnionRig rig(2, /*ordered=*/true);
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(10, 1));
  rig.ins[0]->Push(DataTuple(30, 2));
  rig.ins[1]->Push(DataTuple(20, 3));
  rig.ins[1]->Push(DataTuple(40, 4));

  std::vector<Tuple> merged = rig.Drain(ctx);
  // The 40-tuple cannot be emitted: input 0's TSM is 30, so a future tuple
  // at 30..40 could still arrive there.
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].timestamp(), 10);
  EXPECT_EQ(merged[1].timestamp(), 20);
  EXPECT_EQ(merged[2].timestamp(), 30);
}

TEST(UnionTest, BlocksOnEmptyInput) {
  UnionRig rig(2, true);
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(10, 1));
  StepResult r = rig.op.Step(ctx);
  EXPECT_FALSE(r.more);
  EXPECT_FALSE(r.processed_data);
  EXPECT_TRUE(r.idle_waiting);
  EXPECT_EQ(r.blocked_input, 1);  // the empty, never-observed input
  EXPECT_TRUE(rig.out.empty());
}

TEST(UnionTest, BlockedWithoutDataIsNotIdleWaiting) {
  UnionRig rig(2, true);
  ManualExecContext ctx;
  StepResult r = rig.op.Step(ctx);
  EXPECT_FALSE(r.more);
  EXPECT_FALSE(r.idle_waiting);  // nothing pending anywhere
}

TEST(UnionTest, PunctuationUnblocks) {
  UnionRig rig(2, true);
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(10, 1));
  rig.ins[1]->Push(Tuple::MakePunctuation(50));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  // The data tuple at 10 flows out (punct raised input 1's TSM to 50);
  // the punctuation is consumed and forwarded as the new watermark 10?
  // min TSM = min(10-after-consumption...,50): after the data tuple at 10
  // is consumed input 0's register still holds 10.
  ASSERT_GE(emitted.size(), 1u);
  EXPECT_TRUE(emitted[0].is_data());
  EXPECT_EQ(emitted[0].timestamp(), 10);
}

TEST(UnionTest, PunctuationForwardedAsWatermark) {
  UnionRig rig(2, true);
  ManualExecContext ctx;
  rig.ins[0]->Push(Tuple::MakePunctuation(30));
  rig.ins[1]->Push(Tuple::MakePunctuation(20));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  // Both punctuations consumed; the watermark min(30, 20) = 20 goes out
  // (possibly after the first consumption, deduplicated).
  ASSERT_FALSE(emitted.empty());
  for (const Tuple& t : emitted) EXPECT_TRUE(t.is_punctuation());
  EXPECT_EQ(emitted.back().timestamp(), 20);
}

TEST(UnionTest, WatermarkDeduplicated) {
  UnionRig rig(2, true);
  ManualExecContext ctx;
  rig.ins[0]->Push(Tuple::MakePunctuation(10));
  rig.ins[1]->Push(Tuple::MakePunctuation(10));
  rig.ins[0]->Push(Tuple::MakePunctuation(10));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  // Three inputs punctuations at 10 produce exactly one watermark at 10.
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].timestamp(), 10);
}

TEST(UnionTest, SimultaneousTuplesBothEmitted) {
  // Section 4.1: with TSM registers, tuples with equal timestamps on both
  // inputs are all processed without idle-waiting.
  UnionRig rig(2, true);
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(100, 1));
  rig.ins[1]->Push(DataTuple(100, 2));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[0].timestamp(), 100);
  EXPECT_EQ(emitted[1].timestamp(), 100);
}

TEST(UnionTest, LateSimultaneousTupleStillEmitted) {
  // The register "remains until the next tuple updates it": after both
  // 100-tuples are consumed, another 100-tuple arriving on input 0 is
  // emitted immediately because input 1's register still reads 100.
  UnionRig rig(2, true);
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(100, 1));
  rig.ins[1]->Push(DataTuple(100, 2));
  rig.Drain(ctx);
  rig.ins[0]->Push(DataTuple(100, 3));
  StepResult r = rig.op.Step(ctx);
  EXPECT_TRUE(r.processed_data);
  ASSERT_EQ(rig.out.size(), 1u);
  EXPECT_EQ(rig.out.Front().value(0).int64_value(), 3);
}

TEST(UnionTest, WithoutRegistersThisWouldIdleWait) {
  // Complementary check: a *fresh* tuple at a NEW timestamp on one input
  // does idle-wait until the other side catches up.
  UnionRig rig(2, true);
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(100, 1));
  rig.ins[1]->Push(DataTuple(100, 2));
  rig.Drain(ctx);
  rig.ins[0]->Push(DataTuple(101, 3));
  StepResult r = rig.op.Step(ctx);
  EXPECT_FALSE(r.processed_data);
  EXPECT_TRUE(r.idle_waiting);
  EXPECT_EQ(r.blocked_input, 1);
}

TEST(UnionTest, TsmRegistersExposed) {
  UnionRig rig(2, true);
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(10, 1));
  rig.op.Step(ctx);
  EXPECT_EQ(rig.op.tsm(0), 10);
  EXPECT_EQ(rig.op.tsm(1), kMinTimestamp);
}

TEST(UnionTest, ThreeWayMerge) {
  UnionRig rig(3, true);
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(30, 1));
  rig.ins[1]->Push(DataTuple(10, 2));
  rig.ins[2]->Push(DataTuple(20, 3));
  rig.ins[0]->Push(Tuple::MakePunctuation(100));
  rig.ins[1]->Push(Tuple::MakePunctuation(100));
  rig.ins[2]->Push(Tuple::MakePunctuation(100));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  std::vector<Timestamp> data_ts;
  for (const Tuple& t : emitted) {
    if (t.is_data()) data_ts.push_back(t.timestamp());
  }
  ASSERT_EQ(data_ts.size(), 3u);
  EXPECT_EQ(data_ts, (std::vector<Timestamp>{10, 20, 30}));
}

TEST(UnionTest, OutputTimestampsNondecreasing) {
  UnionRig rig(2, true);
  ManualExecContext ctx;
  for (int i = 0; i < 50; ++i) rig.ins[0]->Push(DataTuple(i * 2, i));
  for (int i = 0; i < 50; ++i) rig.ins[1]->Push(DataTuple(i * 3, i));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  Timestamp previous = kMinTimestamp;
  for (const Tuple& t : emitted) {
    EXPECT_GE(t.timestamp(), previous);
    previous = t.timestamp();
  }
}

TEST(UnionTest, PreservesLineage) {
  UnionRig rig(2, true);
  ManualExecContext ctx;
  Tuple t = DataTuple(10, 1);
  t.set_source_id(7);
  t.set_arrival_time(9);
  rig.ins[0]->Push(std::move(t));
  rig.ins[1]->Push(Tuple::MakePunctuation(99));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  ASSERT_FALSE(emitted.empty());
  EXPECT_EQ(emitted[0].source_id(), 7);
  EXPECT_EQ(emitted[0].arrival_time(), 9);
}

TEST(UnionUnorderedTest, EmitsImmediatelyWithoutTimestamps) {
  // Scenario D: latent tuples are added to the output as soon as they
  // arrive, without any check on their timestamps (Section 5).
  UnionRig rig(2, /*ordered=*/false);
  ManualExecContext ctx;
  rig.ins[0]->Push(Tuple::MakeLatent({Value(int64_t{1})}));
  StepResult r = rig.op.Step(ctx);
  EXPECT_TRUE(r.processed_data);
  EXPECT_FALSE(r.idle_waiting);
  EXPECT_EQ(rig.out.size(), 1u);
}

TEST(UnionUnorderedTest, RoundRobinAcrossInputs) {
  UnionRig rig(2, false);
  ManualExecContext ctx;
  for (int i = 0; i < 3; ++i) {
    rig.ins[0]->Push(Tuple::MakeLatent({Value(int64_t{i})}));
    rig.ins[1]->Push(Tuple::MakeLatent({Value(int64_t{100 + i})}));
  }
  std::vector<Tuple> emitted = rig.Drain(ctx);
  ASSERT_EQ(emitted.size(), 6u);
  // Alternation: neither input starves.
  EXPECT_EQ(emitted[0].value(0).int64_value(), 0);
  EXPECT_EQ(emitted[1].value(0).int64_value(), 100);
  EXPECT_EQ(emitted[2].value(0).int64_value(), 1);
}

TEST(UnionUnorderedTest, HasWorkIsAnyInputNonEmpty) {
  UnionRig rig(2, false);
  EXPECT_FALSE(rig.op.HasWork());
  rig.ins[1]->Push(Tuple::MakeLatent({}));
  EXPECT_TRUE(rig.op.HasWork());
}

TEST(UnionTest, HasWorkIsRelaxedMore) {
  UnionRig rig(2, true);
  EXPECT_FALSE(rig.op.HasWork());
  rig.ins[0]->Push(DataTuple(10, 1));
  EXPECT_FALSE(rig.op.HasWork());  // other input never observed
  rig.ins[1]->Push(DataTuple(20, 2));
  EXPECT_TRUE(rig.op.HasWork());
}

TEST(UnionTest, WantsEtsOnlyWithPendingData) {
  UnionRig rig(2, true);
  EXPECT_FALSE(rig.op.WantsEts());
  rig.ins[0]->Push(DataTuple(10, 1));
  EXPECT_TRUE(rig.op.WantsEts());
}

TEST(UnionTest, IsIwp) {
  UnionRig rig(2, true);
  EXPECT_TRUE(rig.op.is_iwp());
}

// --- Strict (Figure 1, no TSM registers) mode -------------------------------

struct StrictRig {
  StrictRig() : op("u", /*ordered=*/true, /*use_tsm_registers=*/false) {
    ins.push_back(std::make_unique<StreamBuffer>("i0"));
    ins.push_back(std::make_unique<StreamBuffer>("i1"));
    op.AddInput(ins[0].get());
    op.AddInput(ins[1].get());
    op.AddOutput(&out);
  }
  std::vector<std::unique_ptr<StreamBuffer>> ins;
  StreamBuffer out{"out"};
  Union op;
};

TEST(UnionStrictTest, RequiresAllInputsPresent) {
  StrictRig rig;
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(10, 1));
  StepResult r = rig.op.Step(ctx);
  EXPECT_FALSE(r.processed_data);
  EXPECT_TRUE(r.idle_waiting);
  EXPECT_EQ(r.blocked_input, 1);
  EXPECT_FALSE(rig.op.HasWork());
  rig.ins[1]->Push(DataTuple(20, 2));
  EXPECT_TRUE(rig.op.HasWork());
  r = rig.op.Step(ctx);
  EXPECT_TRUE(r.processed_data);
  EXPECT_EQ(rig.out.Pop().timestamp(), 10);
}

TEST(UnionStrictTest, SimultaneousLeftoverIdleWaits) {
  // The Section 4.1 motivating failure: the basic rules strand a
  // simultaneous tuple when the other buffer empties first.
  StrictRig rig;
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(100, 1));
  rig.ins[0]->Push(DataTuple(100, 2));
  rig.ins[1]->Push(DataTuple(100, 3));
  rig.op.Step(ctx);  // emits one 100-tuple
  rig.op.Step(ctx);  // emits another; one buffer is now empty
  StepResult r = rig.op.Step(ctx);
  EXPECT_FALSE(r.processed_data);
  EXPECT_TRUE(r.idle_waiting);  // the leftover simultaneous tuple is stuck
  EXPECT_EQ(rig.out.size(), 2u);
}

TEST(UnionStrictTest, PunctuationCountsAsPresence) {
  // Heartbeats of [9] unblock basic operators by occupying the empty input.
  StrictRig rig;
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(10, 1));
  rig.ins[1]->Push(Tuple::MakePunctuation(50));
  StepResult r = rig.op.Step(ctx);
  EXPECT_TRUE(r.processed_data);  // min head is the data tuple
  EXPECT_EQ(rig.out.Front().timestamp(), 10);
}

TEST(UnionStrictTest, BlockedInputIsFirstEmpty) {
  StrictRig rig;
  ManualExecContext ctx;
  // A lone punctuation in input 0 cannot be consumed while input 1 is
  // empty; the blocked input must be the EMPTY one (not the punctuation
  // holder), or the executor's backtrack would bounce back and forth.
  rig.ins[0]->Push(Tuple::MakePunctuation(50));
  StepResult r = rig.op.Step(ctx);
  EXPECT_FALSE(r.processed_punctuation);
  EXPECT_FALSE(r.more);
  EXPECT_EQ(r.blocked_input, 1);
  EXPECT_EQ(rig.op.BlockedInput(), 1);
}

}  // namespace
}  // namespace dsms
