#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "metrics/idle_wait_tracker.h"
#include "metrics/latency_recorder.h"
#include "metrics/queue_size_tracker.h"
#include "metrics/table_printer.h"

namespace dsms {
namespace {

Tuple DataAt(Timestamp arrival) {
  Tuple t = Tuple::MakeData(arrival, {});
  t.set_arrival_time(arrival);
  return t;
}

TEST(LatencyRecorderTest, RecordsEmissionDelay) {
  LatencyRecorder recorder;
  recorder.RecordEmission(DataAt(100), 150);
  recorder.RecordEmission(DataAt(200), 230);
  EXPECT_EQ(recorder.count(), 2u);
  EXPECT_DOUBLE_EQ(recorder.mean_us(), 40.0);
  EXPECT_DOUBLE_EQ(recorder.mean_ms(), 0.04);
  EXPECT_EQ(recorder.max_us(), 50);
}

TEST(LatencyRecorderTest, IgnoresPunctuation) {
  LatencyRecorder recorder;
  recorder.RecordEmission(Tuple::MakePunctuation(5), 100);
  EXPECT_EQ(recorder.count(), 0u);
}

TEST(LatencyRecorderTest, Reset) {
  LatencyRecorder recorder;
  recorder.RecordEmission(DataAt(0), 10);
  recorder.Reset();
  EXPECT_EQ(recorder.count(), 0u);
}

TEST(QueueSizeTrackerTest, TracksPeakTotal) {
  QueueSizeTracker tracker;
  StreamBuffer a("a");
  StreamBuffer b("b");
  a.ReplaceListeners(&tracker);
  b.ReplaceListeners(&tracker);
  a.Push(Tuple::MakeData(1, {}));
  b.Push(Tuple::MakeData(1, {}));
  b.Push(Tuple::MakeData(2, {}));
  EXPECT_EQ(tracker.current_total(), 3);
  EXPECT_EQ(tracker.peak_total(), 3);
  a.Pop();
  b.Pop();
  EXPECT_EQ(tracker.current_total(), 1);
  EXPECT_EQ(tracker.peak_total(), 3);  // peak sticks
}

TEST(QueueSizeTrackerTest, SeparatesDataFromPunctuation) {
  QueueSizeTracker tracker;
  StreamBuffer a("a");
  a.ReplaceListeners(&tracker);
  a.Push(Tuple::MakeData(1, {}));
  a.Push(Tuple::MakePunctuation(2));
  a.Push(Tuple::MakePunctuation(3));
  EXPECT_EQ(tracker.current_total(), 3);
  EXPECT_EQ(tracker.current_data(), 1);
  EXPECT_EQ(tracker.current_punctuation(), 2);
  EXPECT_EQ(tracker.peak_data(), 1);
}

TEST(QueueSizeTrackerTest, ResetPeakKeepsCurrent) {
  QueueSizeTracker tracker;
  StreamBuffer a("a");
  a.ReplaceListeners(&tracker);
  for (int i = 0; i < 5; ++i) a.Push(Tuple::MakeData(i, {}));
  for (int i = 0; i < 4; ++i) a.Pop();
  EXPECT_EQ(tracker.peak_total(), 5);
  tracker.ResetPeak();
  EXPECT_EQ(tracker.peak_total(), 1);
  EXPECT_EQ(tracker.current_total(), 1);
}

TEST(QueueSizeTrackerTest, ResetClearsEverything) {
  QueueSizeTracker tracker;
  StreamBuffer a("a");
  a.ReplaceListeners(&tracker);
  a.Push(Tuple::MakeData(1, {}));
  a.ReplaceListeners(nullptr);
  tracker.Reset();
  EXPECT_EQ(tracker.current_total(), 0);
  EXPECT_EQ(tracker.peak_total(), 0);
}

TEST(IdleWaitTrackerTest, AccumulatesBlockedIntervals) {
  IdleWaitTracker tracker;
  tracker.MarkBlocked(100);
  tracker.MarkUnblocked(150);
  tracker.MarkBlocked(200);
  tracker.MarkUnblocked(260);
  EXPECT_EQ(tracker.total_idle(300), 110);
  EXPECT_EQ(tracker.blocked_intervals(), 2);
  EXPECT_FALSE(tracker.blocked());
}

TEST(IdleWaitTrackerTest, OpenIntervalCountsTowardNow) {
  IdleWaitTracker tracker;
  tracker.MarkBlocked(100);
  EXPECT_TRUE(tracker.blocked());
  EXPECT_EQ(tracker.total_idle(160), 60);
  EXPECT_EQ(tracker.total_idle(200), 100);
}

TEST(IdleWaitTrackerTest, RepeatedMarksAreIdempotent) {
  IdleWaitTracker tracker;
  tracker.MarkBlocked(10);
  tracker.MarkBlocked(20);  // ignored; still blocked since 10
  tracker.MarkUnblocked(30);
  tracker.MarkUnblocked(40);  // ignored
  EXPECT_EQ(tracker.total_idle(100), 20);
  EXPECT_EQ(tracker.blocked_intervals(), 1);
}

TEST(IdleWaitTrackerTest, IdleFraction) {
  IdleWaitTracker tracker;
  tracker.MarkBlocked(0);
  tracker.MarkUnblocked(99);
  EXPECT_NEAR(tracker.IdleFraction(0, 100), 0.99, 1e-9);
  EXPECT_DOUBLE_EQ(tracker.IdleFraction(100, 100), 0.0);  // empty window
}

TEST(IdleWaitTrackerTest, Reset) {
  IdleWaitTracker tracker;
  tracker.MarkBlocked(0);
  tracker.Reset();
  EXPECT_FALSE(tracker.blocked());
  EXPECT_EQ(tracker.total_idle(100), 0);
  EXPECT_EQ(tracker.blocked_intervals(), 0);
}

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("|-------|-------|"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddNumericRow({1.5, 2.0});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1.5,2\n");
}

TEST(TablePrinterTest, RowArityMismatchDies) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

TEST(TablePrinterTest, NumRows) {
  TablePrinter table({"a"});
  EXPECT_EQ(table.num_rows(), 0);
  table.AddRow({"x"});
  EXPECT_EQ(table.num_rows(), 1);
}

}  // namespace
}  // namespace dsms
