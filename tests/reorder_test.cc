#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "core/value.h"
#include "operators/operator.h"
#include "operators/reorder.h"

namespace dsms {
namespace {

Tuple DataTuple(Timestamp ts, int64_t v) {
  return Tuple::MakeData(ts, {Value(v)});
}

struct ReorderRig {
  explicit ReorderRig(Duration slack) : op("r", slack) {
    op.AddInput(&in);
    op.AddOutput(&out);
  }

  void Feed(Tuple tuple, ManualExecContext& ctx) {
    in.Push(std::move(tuple));
    op.Step(ctx);
  }

  std::vector<Tuple> Emitted() {
    std::vector<Tuple> result;
    while (!out.empty()) result.push_back(out.Pop());
    return result;
  }

  StreamBuffer in{"in"};
  StreamBuffer out{"out"};
  Reorder op;
};

TEST(ReorderTest, HoldsTuplesWithinSlack) {
  ReorderRig rig(100);
  ManualExecContext ctx;
  rig.Feed(DataTuple(50, 1), ctx);
  // Release bound = 50 - 100 < 0: nothing released yet.
  for (const Tuple& t : rig.Emitted()) EXPECT_TRUE(t.is_punctuation());
}

TEST(ReorderTest, RepairsBoundedDisorder) {
  ReorderRig rig(100);
  ManualExecContext ctx;
  rig.Feed(DataTuple(100, 1), ctx);
  rig.Feed(DataTuple(50, 2), ctx);   // late by 50 <= slack
  rig.Feed(DataTuple(300, 3), ctx);  // bound -> 200: releases 50 and 100
  std::vector<Timestamp> data_ts;
  for (const Tuple& t : rig.Emitted()) {
    if (t.is_data()) data_ts.push_back(t.timestamp());
  }
  EXPECT_EQ(data_ts, (std::vector<Timestamp>{50, 100}));
  EXPECT_EQ(rig.op.late_dropped(), 0u);
}

TEST(ReorderTest, DropsBeyondSlackStragglers) {
  ReorderRig rig(10);
  ManualExecContext ctx;
  rig.Feed(DataTuple(100, 1), ctx);  // bound -> 90
  rig.Feed(DataTuple(50, 2), ctx);   // 50 < 90: dropped
  EXPECT_EQ(rig.op.late_dropped(), 1u);
  rig.Feed(DataTuple(95, 3), ctx);   // 95 >= 90: kept
  EXPECT_EQ(rig.op.late_dropped(), 1u);
}

TEST(ReorderTest, PunctuationReleasesBuffered) {
  ReorderRig rig(1000);
  ManualExecContext ctx;
  rig.Feed(DataTuple(100, 1), ctx);
  rig.Feed(DataTuple(200, 2), ctx);
  EXPECT_EQ(rig.op.buffered(), 2u);
  rig.Feed(Tuple::MakePunctuation(500), ctx);
  std::vector<Timestamp> data_ts;
  for (const Tuple& t : rig.Emitted()) {
    if (t.is_data()) data_ts.push_back(t.timestamp());
  }
  EXPECT_EQ(data_ts, (std::vector<Timestamp>{100, 200}));
  EXPECT_EQ(rig.op.buffered(), 0u);
}

TEST(ReorderTest, ForwardsReleaseBoundAsPunctuation) {
  ReorderRig rig(10);
  ManualExecContext ctx;
  rig.Feed(DataTuple(100, 1), ctx);
  std::vector<Tuple> emitted = rig.Emitted();
  ASSERT_FALSE(emitted.empty());
  EXPECT_TRUE(emitted.back().is_punctuation());
  EXPECT_EQ(emitted.back().timestamp(), 90);
}

TEST(ReorderTest, TiesKeepArrivalOrder) {
  ReorderRig rig(0);
  ManualExecContext ctx;
  rig.Feed(DataTuple(10, 1), ctx);
  rig.Feed(DataTuple(10, 2), ctx);
  rig.Feed(DataTuple(20, 3), ctx);
  std::vector<int64_t> order;
  for (const Tuple& t : rig.Emitted()) {
    if (t.is_data()) order.push_back(t.value(0).int64_value());
  }
  // Zero slack: each tuple releases immediately; equal timestamps keep
  // their arrival order.
  EXPECT_EQ(order, (std::vector<int64_t>{1, 2, 3}));
}

TEST(ReorderTest, ZeroSlackIsPassThroughForOrderedInput) {
  ReorderRig rig(0);
  ManualExecContext ctx;
  rig.Feed(DataTuple(10, 1), ctx);
  rig.Feed(DataTuple(20, 2), ctx);
  std::vector<Timestamp> data_ts;
  for (const Tuple& t : rig.Emitted()) {
    if (t.is_data()) data_ts.push_back(t.timestamp());
  }
  // With zero slack the release bound tracks max_seen, so ordered input
  // passes straight through.
  EXPECT_EQ(data_ts, (std::vector<Timestamp>{10, 20}));
}

class ReorderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReorderPropertyTest, OutputAlwaysNondecreasing) {
  // Random walk timestamps with bounded jitter; output must be ordered and
  // must retain every tuple whose disorder is within the slack.
  const Duration slack = 50;
  ReorderRig rig(slack);
  ManualExecContext ctx;
  Pcg32 rng(GetParam());
  Timestamp base = 100;
  int fed = 0;
  for (int i = 0; i < 500; ++i) {
    base += rng.NextInt(0, 10);
    Timestamp jittered = base - rng.NextInt(0, 40);  // disorder < slack
    rig.Feed(DataTuple(jittered, i), ctx);
    ++fed;
  }
  rig.Feed(Tuple::MakePunctuation(base + 1000), ctx);
  Timestamp previous = kMinTimestamp;
  int data = 0;
  for (const Tuple& t : rig.Emitted()) {
    EXPECT_GE(t.timestamp(), previous);
    previous = t.timestamp();
    if (t.is_data()) ++data;
  }
  // Jitter (40) plus walk step (10) can still exceed what an already-made
  // promise allows in rare adversarial sequences, but with these bounds no
  // tuple is ever below the release bound: all survive.
  EXPECT_EQ(data + static_cast<int>(rig.op.late_dropped()), fed);
  EXPECT_EQ(rig.op.late_dropped(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

TEST(ReorderTest, RequiresTimestampedInput) {
  EXPECT_TRUE(Reorder("r", 5).requires_timestamped_input());
}

TEST(ReorderTest, LatentTupleDies) {
  ReorderRig rig(10);
  ManualExecContext ctx;
  rig.in.Push(Tuple::MakeLatent({}));
  EXPECT_DEATH(rig.op.Step(ctx), "");
}

}  // namespace
}  // namespace dsms
