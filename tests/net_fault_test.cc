// Unit tests for the wire-level chaos machinery (net/net_fault.h): the
// NetFaultInjector's headline property is determinism — one (spec, seed,
// schedule) triple produces a byte-identical fault timeline and identical
// chunk/offset/garbage decisions across runs — plus spelling round-trips
// and the `netfault` plan-DSL statement.

#include "net/net_fault.h"

#include <string>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "net/feed_schedule.h"
#include "sim/experiment_spec.h"

namespace dsms {
namespace {

using ::testing::HasSubstr;

std::vector<ScheduledFrame> FakeSchedule(size_t frames, Duration step) {
  std::vector<ScheduledFrame> schedule;
  for (size_t i = 0; i < frames; ++i) {
    ScheduledFrame entry;
    entry.time = static_cast<Timestamp>(i) * step;
    entry.frame.stream_id = 0;
    entry.frame.values.emplace_back(static_cast<int64_t>(i));
    schedule.push_back(entry);
  }
  return schedule;
}

TEST(NetFaultKindTest, SpellingsRoundTrip) {
  const NetFaultKind kinds[] = {
      NetFaultKind::kNone,           NetFaultKind::kSplit,
      NetFaultKind::kCoalesce,       NetFaultKind::kSlowloris,
      NetFaultKind::kRstMidFrame,    NetFaultKind::kHalfOpen,
      NetFaultKind::kReconnectStorm, NetFaultKind::kDuplicateHello,
      NetFaultKind::kGarbage,
  };
  for (NetFaultKind kind : kinds) {
    auto parsed = ParseNetFaultKind(NetFaultKindToString(kind));
    ASSERT_TRUE(parsed.has_value()) << NetFaultKindToString(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseNetFaultKind("tsunami").has_value());
  EXPECT_FALSE(ParseNetFaultKind("").has_value());
}

TEST(NetFaultInjectorTest, SameSeedSameScheduleByteIdenticalTimeline) {
  NetFaultSpec spec;
  spec.kind = NetFaultKind::kSplit;
  spec.seed = 42;
  spec.count = 4;
  const std::vector<ScheduledFrame> schedule = FakeSchedule(100, kMillisecond);

  auto run = [&](uint64_t run_seed) {
    NetFaultInjector injector(spec, run_seed);
    injector.Prepare(schedule);
    std::vector<std::vector<size_t>> plans;
    for (size_t i = 0; i < schedule.size(); ++i) {
      if (injector.ConsumeTrigger(i)) {
        plans.push_back(injector.PlanChunks(64 + i));
      }
    }
    return std::make_pair(injector.timeline(), plans);
  };

  auto [timeline_a, plans_a] = run(7);
  auto [timeline_b, plans_b] = run(7);
  EXPECT_EQ(timeline_a, timeline_b);
  EXPECT_EQ(plans_a, plans_b);
  ASSERT_EQ(plans_a.size(), 4u);

  // A different run seed is a genuinely different (but still deterministic)
  // fault sequence: the chunk RNG diverges even though triggers stay put.
  auto [timeline_c, plans_c] = run(8);
  EXPECT_NE(timeline_a, timeline_c);
  EXPECT_NE(plans_a, plans_c);
}

TEST(NetFaultInjectorTest, TriggersSpreadOverTheEligibleSuffix) {
  NetFaultSpec spec;
  spec.kind = NetFaultKind::kGarbage;
  spec.count = 3;
  spec.at = 50 * kMillisecond;  // first eligible frame: index 50
  const std::vector<ScheduledFrame> schedule = FakeSchedule(100, kMillisecond);

  NetFaultInjector injector(spec, 0);
  injector.Prepare(schedule);
  EXPECT_EQ(injector.pending_triggers(), 3u);

  std::vector<size_t> fired;
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (injector.ConsumeTrigger(i)) fired.push_back(i);
  }
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_GE(fired.front(), 50u);
  EXPECT_LT(fired.back(), 100u);
  // Consume-once: a restarted schedule pass must not re-fire.
  for (size_t i : fired) EXPECT_FALSE(injector.ConsumeTrigger(i));
  EXPECT_EQ(injector.pending_triggers(), 0u);
  EXPECT_THAT(injector.timeline(), HasSubstr("prepare kind=garbage"));
}

TEST(NetFaultInjectorTest, ChunkPlansCoverTheFrameExactly) {
  NetFaultSpec split;
  split.kind = NetFaultKind::kSplit;
  split.seed = 9;
  NetFaultInjector injector(split, 0);
  for (size_t size : {1u, 2u, 3u, 64u, 1000u}) {
    std::vector<size_t> chunks = injector.PlanChunks(size);
    size_t total = 0;
    for (size_t c : chunks) {
      EXPECT_GE(c, 1u);
      total += c;
    }
    EXPECT_EQ(total, size) << "size " << size;
    if (size >= 2) {
      EXPECT_GE(chunks.size(), 2u) << "size " << size;
    }
  }

  NetFaultSpec drip;
  drip.kind = NetFaultKind::kSlowloris;
  drip.chunk = 3;
  NetFaultInjector dripper(drip, 0);
  std::vector<size_t> chunks = dripper.PlanChunks(10);
  ASSERT_EQ(chunks.size(), 4u);  // 3+3+3+1
  EXPECT_EQ(chunks.back(), 1u);
}

TEST(NetFaultInjectorTest, RstOffsetAlwaysInsideTheFrame) {
  NetFaultSpec spec;
  spec.kind = NetFaultKind::kRstMidFrame;
  NetFaultInjector injector(spec, 0);
  EXPECT_EQ(injector.PlanRstOffset(0), 0u);
  EXPECT_EQ(injector.PlanRstOffset(1), 0u);
  for (int i = 0; i < 50; ++i) {
    size_t offset = injector.PlanRstOffset(40);
    EXPECT_GE(offset, 1u);
    EXPECT_LE(offset, 39u);
  }
}

TEST(NetFaultInjectorTest, GarbageLeadsWithAnImpossibleLengthPrefix) {
  NetFaultSpec spec;
  spec.kind = NetFaultKind::kGarbage;
  spec.bytes = 32;
  NetFaultInjector a(spec, 3);
  NetFaultInjector b(spec, 3);
  std::string garbage_a = a.GarbageBytes();
  EXPECT_EQ(garbage_a.size(), 32u);
  // The whole 4-byte fake length prefix must be 0xff: a lone 0xff is only
  // the little-endian LOW byte and could still form a plausible length.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<uint8_t>(garbage_a[i]), 0xffu) << "byte " << i;
  }
  EXPECT_EQ(garbage_a, b.GarbageBytes());
}

TEST(NetFaultInjectorTest, CoalesceNeverOvershootsRemaining) {
  NetFaultSpec spec;
  spec.kind = NetFaultKind::kCoalesce;
  NetFaultInjector injector(spec, 0);
  EXPECT_EQ(injector.PlanCoalesce(0), 0u);
  EXPECT_EQ(injector.PlanCoalesce(1), 1u);
  for (int i = 0; i < 50; ++i) {
    size_t batch = injector.PlanCoalesce(5);
    EXPECT_GE(batch, 2u);
    EXPECT_LE(batch, 5u);
  }
}

// --- plan-DSL statement ----------------------------------------------------

constexpr char kPlanPrefix[] = R"(
stream A ts=internal
sink OUT in=A
feed A process=constant rate=10
run horizon=1s
)";

TEST(NetFaultDslTest, ParsesAllKnobs) {
  std::string text = std::string(kPlanPrefix) +
                     "netfault kind=slowloris at=250ms seed=77 count=9 "
                     "chunk=2 gap=5ms bytes=128 stale=4\n";
  Result<Experiment> experiment = ParseExperiment(text);
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();
  ASSERT_EQ(experiment->netfaults.size(), 1u);
  const NetFaultSpec& spec = experiment->netfaults[0];
  EXPECT_EQ(spec.kind, NetFaultKind::kSlowloris);
  EXPECT_EQ(spec.at, 250 * kMillisecond);
  EXPECT_EQ(spec.seed, 77u);
  EXPECT_EQ(spec.count, 9);
  EXPECT_EQ(spec.chunk, 2u);
  EXPECT_EQ(spec.gap, 5 * kMillisecond);
  EXPECT_EQ(spec.bytes, 128u);
  EXPECT_EQ(spec.stale, 4);
}

TEST(NetFaultDslTest, DefaultsMatchTheSpecStruct) {
  std::string text =
      std::string(kPlanPrefix) + "netfault kind=reconnect-storm\n";
  Result<Experiment> experiment = ParseExperiment(text);
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();
  ASSERT_EQ(experiment->netfaults.size(), 1u);
  const NetFaultSpec defaults;
  const NetFaultSpec& spec = experiment->netfaults[0];
  EXPECT_EQ(spec.kind, NetFaultKind::kReconnectStorm);
  EXPECT_EQ(spec.at, defaults.at);
  EXPECT_EQ(spec.seed, defaults.seed);
  EXPECT_EQ(spec.count, defaults.count);
  EXPECT_EQ(spec.chunk, defaults.chunk);
  EXPECT_EQ(spec.gap, defaults.gap);
  EXPECT_EQ(spec.bytes, defaults.bytes);
  EXPECT_EQ(spec.stale, defaults.stale);
}

TEST(NetFaultDslTest, MultipleStatementsAccumulate) {
  std::string text = std::string(kPlanPrefix) +
                     "netfault kind=split seed=1\n"
                     "netfault kind=garbage seed=2\n";
  Result<Experiment> experiment = ParseExperiment(text);
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();
  ASSERT_EQ(experiment->netfaults.size(), 2u);
  EXPECT_EQ(experiment->netfaults[0].kind, NetFaultKind::kSplit);
  EXPECT_EQ(experiment->netfaults[1].kind, NetFaultKind::kGarbage);
}

TEST(NetFaultDslTest, RejectsMissingOrUnknownKind) {
  Result<Experiment> missing =
      ParseExperiment(std::string(kPlanPrefix) + "netfault seed=3\n");
  ASSERT_FALSE(missing.ok());
  EXPECT_THAT(missing.status().message(), HasSubstr("kind="));

  Result<Experiment> unknown =
      ParseExperiment(std::string(kPlanPrefix) + "netfault kind=tsunami\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_THAT(unknown.status().message(), HasSubstr("tsunami"));

  // kind=none is a spelling, but arming a no-op fault is a config error.
  Result<Experiment> none =
      ParseExperiment(std::string(kPlanPrefix) + "netfault kind=none\n");
  ASSERT_FALSE(none.ok());
}

TEST(NetFaultDslTest, RejectsBadKnobValues) {
  EXPECT_FALSE(ParseExperiment(std::string(kPlanPrefix) +
                               "netfault kind=split count=0\n")
                   .ok());
  EXPECT_FALSE(ParseExperiment(std::string(kPlanPrefix) +
                               "netfault kind=garbage bytes=0\n")
                   .ok());
  EXPECT_FALSE(ParseExperiment(std::string(kPlanPrefix) +
                               "netfault kind=reconnect-storm stale=-1\n")
                   .ok());
}

}  // namespace
}  // namespace dsms
