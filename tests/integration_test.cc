// Whole-graph integration tests: fan-out and routing topologies under the
// DFS executor, multi-component scheduling, degenerate cost models, and a
// long-horizon soak run checking global invariants.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/clock.h"
#include "core/tuple.h"
#include "exec/dfs_executor.h"
#include "exec/round_robin_executor.h"
#include "graph/graph_builder.h"
#include "graph/plan_parser.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"

namespace dsms {
namespace {

TEST(IntegrationTest, CopyFanOutBothBranchesServed) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  CopyOp* copy = builder.AddCopy("C");
  Sink* left = builder.AddSink("L");
  Sink* right = builder.AddSink("R");
  builder.Connect(s, copy);
  builder.Connect(copy, left);
  builder.Connect(copy, right);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());

  VirtualClock clock;
  DfsExecutor executor(graph->get(), &clock, ExecConfig{});
  for (int i = 0; i < 20; ++i) {
    clock.Advance(1000);
    s->Ingest({Value(int64_t{i})}, clock.now());
  }
  executor.RunUntilIdle();
  EXPECT_EQ(left->data_delivered(), 20u);
  EXPECT_EQ(right->data_delivered(), 20u);
}

TEST(IntegrationTest, SplitRoutesIntoUnionAndEtsFlowsPerBranch) {
  // S -> split(even, odd) -> two filters -> union -> sink. The split
  // replicates punctuation to both branches, so the union downstream never
  // starves on either branch even though data alternates.
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  Split* split = builder.AddSplit(
      "SP",
      {[](const Tuple& t) { return t.value(0).int64_value() % 2 == 0; },
       [](const Tuple& t) { return t.value(0).int64_value() % 2 != 0; }});
  auto* f_even = builder.AddFilter("FE", [](const Tuple&) { return true; });
  auto* f_odd = builder.AddFilter("FO", [](const Tuple&) { return true; });
  Union* u = builder.AddUnion("U");
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, split);
  builder.Connect(split, f_even);
  builder.Connect(split, f_odd);
  builder.Connect(f_even, u);
  builder.Connect(f_odd, u);
  builder.Connect(u, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  sink->set_collect(true);

  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  DfsExecutor executor(graph->get(), &clock, config);
  Simulation sim(graph->get(), &executor, &clock);
  sim.AddFeed(s, std::make_unique<ConstantRateProcess>(20.0));
  sim.Run(10 * kSecond);

  // All tuples delivered, in timestamp order, despite branch alternation.
  EXPECT_EQ(sink->data_delivered(), s->tuples_ingested());
  Timestamp previous = kMinTimestamp;
  for (const Tuple& t : sink->collected()) {
    EXPECT_GE(t.timestamp(), previous);
    previous = t.timestamp();
  }
}

TEST(IntegrationTest, TwoComponentsShareTheExecutor) {
  // Two independent queries in one graph: the scheduler (FindWork scan)
  // serves both; metrics are per-sink.
  GraphBuilder builder;
  Source* s1 = builder.AddSource("S1", TimestampKind::kInternal);
  Sink* k1 = builder.AddSink("K1");
  builder.Connect(s1, k1);
  Source* s2 = builder.AddSource("S2", TimestampKind::kInternal);
  auto* f2 = builder.AddFilter("F2", [](const Tuple&) { return true; });
  Sink* k2 = builder.AddSink("K2");
  builder.Connect(s2, f2);
  builder.Connect(f2, k2);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  EXPECT_EQ((*graph)->Components().size(), 2u);

  VirtualClock clock;
  DfsExecutor executor(graph->get(), &clock, ExecConfig{});
  Simulation sim(graph->get(), &executor, &clock);
  sim.AddFeed(s1, std::make_unique<ConstantRateProcess>(10.0));
  sim.AddFeed(s2, std::make_unique<ConstantRateProcess>(3.0));
  sim.Run(10 * kSecond);
  EXPECT_NEAR(static_cast<double>(k1->data_delivered()), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(k2->data_delivered()), 30.0, 2.0);
}

TEST(IntegrationTest, ZeroCostModelStillTerminates) {
  // With all step costs zero the virtual clock only moves on event jumps;
  // the executor must still settle after each activation (ETS suppression
  // by non-advancing bounds is what prevents spinning).
  GraphBuilder builder;
  Source* s1 = builder.AddSource("S1", TimestampKind::kInternal);
  Source* s2 = builder.AddSource("S2", TimestampKind::kInternal);
  Union* u = builder.AddUnion("U");
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s1, u);
  builder.Connect(s2, u);
  builder.Connect(u, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());

  VirtualClock clock;
  ExecConfig config;
  config.costs = CostModel{0, 0, 0, 0, 0};
  config.ets.mode = EtsMode::kOnDemand;
  DfsExecutor executor(graph->get(), &clock, config);
  Simulation sim(graph->get(), &executor, &clock);
  sim.AddFeed(s1, std::make_unique<ConstantRateProcess>(50.0));
  sim.Run(5 * kSecond);
  EXPECT_EQ(sink->data_delivered(), s1->tuples_ingested());
  (void)u;
}

TEST(IntegrationTest, DeepPipelinePlanEndToEnd) {
  // A deep plan exercising most DSL statement types in one query.
  auto plan = ParsePlan(R"(
stream RAW ts=internal
reorder RO in=RAW slack=1ms
filter BIG in=RO field=0 op=ge value=0
project KEYED in=BIG fields=0,0
map COPYCOL in=KEYED fields=0
)");
  // `map` is not a DSL statement; the line above must fail cleanly.
  EXPECT_FALSE(plan.ok());

  auto good = ParsePlan(R"(
stream RAW ts=internal
reorder RO in=RAW slack=1ms
filter BIG in=RO field=0 op=ge value=0
project KEYED in=BIG fields=0,0
gaggregate COUNTS in=KEYED fn=count key=0 window=1s
sink OUT in=COUNTS
)");
  ASSERT_TRUE(good.ok()) << good.status();

  auto* raw = dynamic_cast<Source*>(good->Find("RAW"));
  auto* out = dynamic_cast<Sink*>(good->Find("OUT"));
  ASSERT_NE(raw, nullptr);
  ASSERT_NE(out, nullptr);

  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  DfsExecutor executor(good->graph.get(), &clock, config);
  Simulation sim(good->graph.get(), &executor, &clock);
  sim.AddFeed(raw, std::make_unique<PoissonProcess>(25.0, 3));
  sim.Run(20 * kSecond);
  EXPECT_GT(out->data_delivered(), 10u);  // one count row per busy window
}

TEST(IntegrationTest, SoakHourLongHorizonInvariantsHold) {
  // One virtual hour of the paper's query under on-demand ETS; checks
  // conservation, ordering, and that buffers stay tiny throughout.
  GraphBuilder builder;
  Source* fast = builder.AddSource("FAST", TimestampKind::kInternal);
  Source* slow = builder.AddSource("SLOW", TimestampKind::kInternal);
  Union* u = builder.AddUnion("U");
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(fast, u);
  builder.Connect(slow, u);
  builder.Connect(u, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());

  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  DfsExecutor executor(graph->get(), &clock, config);
  Simulation sim(graph->get(), &executor, &clock);
  sim.AddFeed(fast, std::make_unique<PoissonProcess>(50.0, 11));
  sim.AddFeed(slow, std::make_unique<PoissonProcess>(0.05, 12));
  sim.Run(3600 * kSecond);

  uint64_t ingested = fast->tuples_ingested() + slow->tuples_ingested();
  // Everything but the last blocked handful must be out.
  EXPECT_GE(sink->data_delivered() + 5, ingested);
  EXPECT_LT(sim.queue_tracker().peak_total(), 20);
  EXPECT_LT(sink->latency().mean_ms(), 1.0);
  const IdleWaitTracker* tracker = executor.idle_tracker(u->id());
  ASSERT_NE(tracker, nullptr);
  EXPECT_LT(tracker->IdleFraction(0, clock.now()), 0.01);
}

TEST(IntegrationTest, RoundRobinSplitUnionGraph) {
  GraphBuilder builder;
  Source* s = builder.AddSource("S", TimestampKind::kInternal);
  Split* split = builder.AddSplit(
      "SP",
      {[](const Tuple& t) { return t.value(0).int64_value() % 2 == 0; },
       [](const Tuple& t) { return t.value(0).int64_value() % 2 != 0; }});
  Union* u = builder.AddUnion("U");
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(s, split);
  builder.Connect(split, u);
  builder.Connect(split, u);
  builder.Connect(u, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());

  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = EtsMode::kOnDemand;
  RoundRobinExecutor executor(graph->get(), &clock, config, /*quantum=*/2);
  Simulation sim(graph->get(), &executor, &clock);
  sim.AddFeed(s, std::make_unique<ConstantRateProcess>(10.0));
  sim.Run(10 * kSecond);
  EXPECT_EQ(sink->data_delivered(), s->tuples_ingested());
}

}  // namespace
}  // namespace dsms
