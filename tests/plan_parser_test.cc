#include <string>

#include <gtest/gtest.h>

#include "common/time.h"
#include "graph/plan_parser.h"
#include "operators/reorder.h"
#include "operators/source.h"
#include "operators/union_op.h"
#include "operators/window_aggregate.h"
#include "operators/window_join.h"

namespace dsms {
namespace {

constexpr char kPaperPlan[] = R"(
# The experimental query of Section 6 (Figure 4 plus selections).
stream S1 ts=internal
stream S2 ts=internal
filter F1 in=S1 selectivity=0.95 seed=7
filter F2 in=S2 selectivity=0.95 seed=8
union U in=F1,F2
sink OUT in=U
)";

TEST(ParseDurationTest, Units) {
  Duration d = 0;
  EXPECT_TRUE(ParseDuration("50us", &d).ok());
  EXPECT_EQ(d, 50);
  EXPECT_TRUE(ParseDuration("2ms", &d).ok());
  EXPECT_EQ(d, 2000);
  EXPECT_TRUE(ParseDuration("3s", &d).ok());
  EXPECT_EQ(d, 3 * kSecond);
  EXPECT_TRUE(ParseDuration("1m", &d).ok());
  EXPECT_EQ(d, 60 * kSecond);
  EXPECT_TRUE(ParseDuration("42", &d).ok());
  EXPECT_EQ(d, 42);
  EXPECT_TRUE(ParseDuration("1.5s", &d).ok());
  EXPECT_EQ(d, 1500000);
}

TEST(ParseDurationTest, Rejects) {
  Duration d = 0;
  EXPECT_FALSE(ParseDuration("", &d).ok());
  EXPECT_FALSE(ParseDuration("abc", &d).ok());
  EXPECT_FALSE(ParseDuration("-5s", &d).ok());
  EXPECT_FALSE(ParseDuration("5x", &d).ok());
}

TEST(PlanParserTest, ParsesPaperPlan) {
  auto plan = ParsePlan(kPaperPlan);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->graph->num_operators(), 6);
  EXPECT_NE(plan->Find("U"), nullptr);
  EXPECT_EQ(plan->Find("missing"), nullptr);
  auto* u = dynamic_cast<Union*>(plan->Find("U"));
  ASSERT_NE(u, nullptr);
  EXPECT_TRUE(u->ordered());
  auto* s1 = dynamic_cast<Source*>(plan->Find("S1"));
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->timestamp_kind(), TimestampKind::kInternal);
}

TEST(PlanParserTest, LatentSourcesInferUnorderedUnion) {
  auto plan = ParsePlan(R"(
stream S1 ts=latent
stream S2 ts=latent
union U in=S1,S2
sink OUT in=U
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto* u = dynamic_cast<Union*>(plan->Find("U"));
  ASSERT_NE(u, nullptr);
  EXPECT_FALSE(u->ordered());
}

TEST(PlanParserTest, ExternalStreamWithSkew) {
  auto plan = ParsePlan(R"(
stream S ts=external skew=100ms
sink OUT in=S
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto* s = dynamic_cast<Source*>(plan->Find("S"));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->timestamp_kind(), TimestampKind::kExternal);
  EXPECT_EQ(s->skew_bound(), 100 * kMillisecond);
}

TEST(PlanParserTest, JoinWithEquiFields) {
  auto plan = ParsePlan(R"(
stream L
stream R
join J in=L,R window=2s left_field=0 right_field=1
sink OUT in=J
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto* join = dynamic_cast<WindowJoin*>(plan->Find("J"));
  ASSERT_NE(join, nullptr);
  EXPECT_TRUE(join->ordered());
}

TEST(PlanParserTest, AggregateStatement) {
  auto plan = ParsePlan(R"(
stream S
aggregate A in=S fn=avg field=0 window=1s slide=500ms
sink OUT in=A
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto* agg = dynamic_cast<WindowAggregate*>(plan->Find("A"));
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->window(), kSecond);
  EXPECT_EQ(agg->slide(), 500 * kMillisecond);
}

TEST(PlanParserTest, ReorderAndPredicateFilterAndProjectAndCopy) {
  auto plan = ParsePlan(R"(
stream S
reorder R in=S slack=50ms
filter F in=R field=0 op=ge value=10
project P in=F fields=0
copy C in=P
sink O1 in=C
sink O2 in=C
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto* reorder = dynamic_cast<Reorder*>(plan->Find("R"));
  ASSERT_NE(reorder, nullptr);
  EXPECT_EQ(reorder->slack(), 50 * kMillisecond);
}

TEST(PlanParserTest, ErrorUnknownInput) {
  auto plan = ParsePlan("sink OUT in=NOPE\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("NOPE"), std::string::npos);
  EXPECT_NE(plan.status().message().find("line 1"), std::string::npos);
}

TEST(PlanParserTest, ErrorDuplicateName) {
  auto plan = ParsePlan("stream S\nstream S\nsink O in=S\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("duplicate"), std::string::npos);
}

TEST(PlanParserTest, ErrorUnknownType) {
  auto plan = ParsePlan("wibble W\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("wibble"), std::string::npos);
}

TEST(PlanParserTest, ErrorBadTsKind) {
  EXPECT_FALSE(ParsePlan("stream S ts=wallclock\nsink O in=S\n").ok());
}

TEST(PlanParserTest, ErrorUnionNeedsTwoInputs) {
  EXPECT_FALSE(ParsePlan("stream S\nunion U in=S\nsink O in=U\n").ok());
}

TEST(PlanParserTest, ErrorMixedLineages) {
  auto plan = ParsePlan(R"(
stream A ts=internal
stream B ts=latent
union U in=A,B
sink O in=U
)");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("mixes"), std::string::npos);
}

TEST(PlanParserTest, ErrorMissingRequiredArg) {
  EXPECT_FALSE(ParsePlan("stream S\naggregate A in=S fn=count\nsink O in=A\n")
                   .ok());  // missing window=
}

TEST(PlanParserTest, ErrorBadSelectivity) {
  EXPECT_FALSE(
      ParsePlan("stream S\nfilter F in=S selectivity=1.5\nsink O in=F\n")
          .ok());
}

TEST(PlanParserTest, ErrorMalformedArgument) {
  auto plan = ParsePlan("stream S =bad\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("malformed"), std::string::npos);
}

TEST(PlanParserTest, ErrorEmptyPlan) {
  EXPECT_FALSE(ParsePlan("  \n# just a comment\n").ok());
}

TEST(PlanParserTest, ErrorValidationFailurePropagates) {
  // Parses fine but the graph is invalid: filter with no consumer.
  auto plan = ParsePlan("stream S\nfilter F in=S selectivity=0.5\n");
  EXPECT_FALSE(plan.ok());
}

TEST(PlanParserTest, CommentsAndBlankLinesIgnored) {
  auto plan = ParsePlan(R"(
# leading comment

stream S   # trailing comment
sink OUT in=S
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->graph->num_operators(), 2);
}

TEST(PlanParserTest, AggregateAfterLatentIsTimestamped) {
  // A latent stream through an aggregate becomes timestamped, so an ordered
  // union downstream is legal.
  auto plan = ParsePlan(R"(
stream A ts=latent
stream B ts=latent
aggregate AG1 in=A fn=count window=1s
aggregate AG2 in=B fn=count window=1s
union U in=AG1,AG2
sink O in=U
)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto* u = dynamic_cast<Union*>(plan->Find("U"));
  ASSERT_NE(u, nullptr);
  EXPECT_TRUE(u->ordered());
}

}  // namespace
}  // namespace dsms
