// The observability layer: Tracer ring-buffer semantics, MetricsRegistry
// behavior, the stat-struct publishing paths, and end-to-end trace content
// for each executor (every exported trace must contain NOS-rule, idle-wait
// and ETS-generation events). Also proves tracing-off leaves execution
// byte-identical (same buffer-movement hash as an untraced run).

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

TEST(TracerTest, RecordsInOrder) {
  VirtualClock clock;
  Tracer tracer(&clock, 16);
  tracer.RecordStep(1, 0, 5, StepKind::kData);
  clock.Advance(10);
  tracer.RecordNosRule(2, NosRule::kForward);
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
  std::vector<TraceEvent> events = tracer.Events();
  EXPECT_EQ(events[0].type, TraceEventType::kStep);
  EXPECT_EQ(events[0].op_id, 1);
  EXPECT_EQ(events[0].dur, 5);
  EXPECT_EQ(events[1].type, TraceEventType::kNosRule);
  EXPECT_EQ(events[1].ts, 10);
}

TEST(TracerTest, RingOverwritesOldestAndCountsDrops) {
  VirtualClock clock;
  Tracer tracer(&clock, 4);
  for (int i = 0; i < 6; ++i) {
    tracer.RecordNosRule(i, NosRule::kEncore);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  // The newest 4 events survive, oldest first.
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i].op_id, i + 2);
}

TEST(TracerTest, CountTypeFiltersRetainedEvents) {
  VirtualClock clock;
  Tracer tracer(&clock, 8);
  tracer.RecordStep(0, 0, 1, StepKind::kData);
  tracer.RecordStep(0, 1, 1, StepKind::kPunctuation);
  tracer.RecordEts(1, EtsOrigin::kOnDemand, 10);
  EXPECT_EQ(tracer.CountType(TraceEventType::kStep), 2u);
  EXPECT_EQ(tracer.CountType(TraceEventType::kEtsGenerated), 1u);
  EXPECT_EQ(tracer.CountType(TraceEventType::kFaultInjected), 0u);
}

TEST(TracerTest, EventIsCompact) {
  // The recording hook is an inline 32-byte store; growing the event struct
  // is a hot-path regression.
  static_assert(sizeof(TraceEvent) <= 32);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  MetricsRegistry::Counter* c = registry.GetCounter("steps");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(registry.GetCounter("steps"), c);
  EXPECT_EQ(registry.GetCounter("steps")->value(), 5u);
  EXPECT_TRUE(registry.Contains("steps"));
  EXPECT_FALSE(registry.Contains("missing"));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, KindMismatchIsFatal) {
  MetricsRegistry registry;
  registry.GetCounter("metric");
  EXPECT_DEATH(registry.GetGauge("metric"), "");
}

TEST(MetricsRegistryTest, SamplesAreSortedAndHistogramsFlatten) {
  MetricsRegistry registry;
  registry.SetGauge("z.last", 1.0);
  registry.SetCounter("a.first", 2);
  Histogram* hist = registry.GetHistogram("m.lat");
  hist->Record(10);
  hist->Record(20);
  std::vector<MetricsRegistry::Sample> samples = registry.Samples();
  ASSERT_EQ(samples.size(), 7u);  // gauge + counter + 5 histogram facets
  EXPECT_EQ(samples.front().name, "a.first");
  EXPECT_EQ(samples.back().name, "z.last");
  EXPECT_EQ(samples[1].name, "m.lat.count");
  EXPECT_EQ(samples[1].value, "2");
  EXPECT_EQ(samples[2].name, "m.lat.mean");
  EXPECT_EQ(samples[2].value, "15");
  EXPECT_EQ(samples[5].name, "m.lat.max");
  EXPECT_EQ(samples[5].value, "20");
}

TEST(MetricsRegistryTest, ViewsAreLiveAndReplaceable) {
  MetricsRegistry registry;
  double value = 1.0;
  registry.RegisterView("live", [&value] { return value; });
  EXPECT_EQ(registry.Samples()[0].value, "1");
  value = 2.5;
  EXPECT_EQ(registry.Samples()[0].value, "2.5");
  registry.RegisterView("live", [] { return 9.0; });
  EXPECT_EQ(registry.Samples()[0].value, "9");
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ExecStatsRegistryTest, BindToIsLiveAndPublishToCopies) {
  ExecStats stats;
  stats.data_steps = 3;
  MetricsRegistry live;
  stats.BindTo(&live, "exec");
  MetricsRegistry copied;
  stats.PublishTo(&copied, "exec");
  stats.data_steps = 8;
  auto value_of = [](const MetricsRegistry& registry, const char* name) {
    for (const auto& sample : registry.Samples()) {
      if (sample.name == name) return sample.value;
    }
    return std::string("<missing>");
  };
  EXPECT_EQ(value_of(live, "exec.data_steps"), "8");    // view: tracks
  EXPECT_EQ(value_of(copied, "exec.data_steps"), "3");  // copy: frozen
  EXPECT_TRUE(copied.Contains("exec.backtrack_hops"));
}

// Regression: `watchdog_ets` and `frontier.lease_expired_ets` alias the same
// field, so emitting both unconditionally double-counted lease ETS for any
// consumer that sums all exec.* counters. The deprecated key must be opt-in
// and the canonical key always present with the full value.
TEST(ExecStatsRegistryTest, DeprecatedWatchdogKeyIsOptIn) {
  ExecStats stats;
  stats.watchdog_ets = 7;

  MetricsRegistry modern;
  stats.PublishTo(&modern, "exec");
  EXPECT_FALSE(modern.Contains("exec.watchdog_ets"));
  EXPECT_TRUE(modern.Contains("exec.frontier.lease_expired_ets"));

  MetricsRegistry legacy;
  stats.PublishTo(&legacy, "exec", /*include_deprecated=*/true);
  uint64_t lease_ets_sum = 0;
  std::string deprecated_value;
  for (const auto& sample : legacy.Samples()) {
    if (sample.name == "exec.watchdog_ets") deprecated_value = sample.value;
    if (sample.name == "exec.watchdog_ets" ||
        sample.name == "exec.frontier.lease_expired_ets") {
      lease_ets_sum += std::stoull(sample.value);
    }
  }
  EXPECT_EQ(deprecated_value, "7");  // kept for `--metrics` JSON consumers
  EXPECT_EQ(lease_ets_sum, 14u);     // both keys present only when opted in

  // Summing every counter in the default emission must count lease ETS once.
  uint64_t total = 0;
  for (const auto& sample : modern.Samples()) total += std::stoull(sample.value);
  EXPECT_EQ(total, 7u);

  MetricsRegistry live;
  stats.BindTo(&live, "exec");
  EXPECT_FALSE(live.Contains("exec.watchdog_ets"));
  EXPECT_TRUE(live.Contains("exec.frontier.lease_expired_ets"));
}

class ExecutorTraceTest : public ::testing::TestWithParam<ExecutorKind> {};

// Acceptance gate of the tracing subsystem: a small on-demand-ETS scenario
// must surface NOS-rule, idle-wait and ETS-generation events in the
// exported trace for every executor.
TEST_P(ExecutorTraceTest, TraceContainsCoreEventKinds) {
  const std::string path =
      ::testing::TempDir() + "/exec_trace_" +
      std::to_string(static_cast<int>(GetParam())) + ".json";
  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.executor = GetParam();
  config.horizon = 20 * kSecond;
  config.warmup = 0;
  config.trace_path = path;
  RunScenario(config);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string trace = contents.str();
  EXPECT_NE(trace.find("\"nos:"), std::string::npos);
  EXPECT_NE(trace.find("\"ets:on-demand\""), std::string::npos);
  EXPECT_NE(trace.find("\"idle-wait\""), std::string::npos);
  EXPECT_NE(trace.find("\"step:data\""), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllExecutors, ExecutorTraceTest,
                         ::testing::Values(ExecutorKind::kDfs,
                                           ExecutorKind::kRoundRobin,
                                           ExecutorKind::kGreedyMemory));

TEST(TraceOffEquivalenceTest, TracingDoesNotPerturbExecution) {
  // With record_trace on, the FNV-1a hash digests every buffer movement.
  // Attaching the execution tracer must not change it: recording is a pure
  // observer (no clock mutation, no scheduling influence).
  ScenarioConfig config;
  config.kind = ScenarioKind::kOnDemandEts;
  config.horizon = 30 * kSecond;
  config.warmup = 0;
  config.record_trace = true;
  ScenarioResult untraced = RunScenario(config);
  config.trace_path = ::testing::TempDir() + "/equivalence_trace.json";
  ScenarioResult traced = RunScenario(config);
  EXPECT_EQ(untraced.trace_hash, traced.trace_hash);
  EXPECT_EQ(untraced.trace_events, traced.trace_events);
  EXPECT_EQ(untraced.tuples_delivered, traced.tuples_delivered);
  EXPECT_EQ(untraced.exec, traced.exec);
}

}  // namespace
}  // namespace dsms
