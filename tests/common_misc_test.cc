// Coverage for the small common utilities: VirtualClock, time conversions,
// logging levels, and ExecStats rendering.

#include <string>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/logging.h"
#include "common/time.h"
#include "exec/exec_stats.h"

namespace dsms {
namespace {

TEST(VirtualClockTest, StartsAtGivenTime) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
}

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  clock.Advance(5);
  clock.Advance(0);
  clock.Advance(7);
  EXPECT_EQ(clock.now(), 12);
}

TEST(VirtualClockTest, AdvanceToJumpsForward) {
  VirtualClock clock;
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.now(), 1000);
  clock.AdvanceTo(1000);  // same time is allowed
  EXPECT_EQ(clock.now(), 1000);
}

TEST(VirtualClockTest, MovingBackwardsDies) {
  VirtualClock clock(10);
  EXPECT_DEATH(clock.AdvanceTo(5), "");
  EXPECT_DEATH(clock.Advance(-1), "");
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(SecondsToDuration(1.5), 1500000);
  EXPECT_EQ(SecondsToDuration(0.0000005), 1);  // rounds
  EXPECT_DOUBLE_EQ(DurationToSeconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(DurationToMillis(1500), 1.5);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
}

TEST(TimeTest, SecondsToDurationRoundsToNearestBothSigns) {
  EXPECT_EQ(SecondsToDuration(0.0), 0);
  EXPECT_EQ(SecondsToDuration(0.0000014), 1);   // 1.4us -> 1
  EXPECT_EQ(SecondsToDuration(0.0000016), 2);   // 1.6us -> 2
  // Regression: truncation-toward-zero used to round every negative value
  // toward +inf (-1.6us came out as -1, -0.6us as 0).
  EXPECT_EQ(SecondsToDuration(-0.0000014), -1);  // -1.4us -> -1
  EXPECT_EQ(SecondsToDuration(-0.0000016), -2);  // -1.6us -> -2
  EXPECT_EQ(SecondsToDuration(-0.0000006), -1);  // -0.6us -> -1
  EXPECT_EQ(SecondsToDuration(-1.5), -1500000);
  // Ties round away from zero, symmetrically.
  EXPECT_EQ(SecondsToDuration(0.0000005), 1);
  EXPECT_EQ(SecondsToDuration(-0.0000005), -1);
}

TEST(TimeTest, Sentinels) {
  EXPECT_LT(kMinTimestamp, 0);
  EXPECT_GT(kMaxTimestamp, 0);
  EXPECT_LT(kMinTimestamp, kMaxTimestamp);
}

TEST(LoggingTest, LevelGate) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are cheap no-ops (no crash, no output check
  // possible here; the point is the path executes).
  DSMS_LOG(Debug) << "invisible " << 42;
  DSMS_LOG(Info) << "also invisible";
  SetLogLevel(original);
}

TEST(ExecStatsTest, ToStringListsCounters) {
  ExecStats stats;
  stats.data_steps = 3;
  stats.punctuation_steps = 2;
  stats.empty_steps = 1;
  stats.ets_generated = 7;
  std::string text = stats.ToString();
  EXPECT_NE(text.find("data_steps=3"), std::string::npos);
  EXPECT_NE(text.find("punct_steps=2"), std::string::npos);
  EXPECT_NE(text.find("ets=7"), std::string::npos);
  EXPECT_EQ(stats.total_steps(), 6u);
}

}  // namespace
}  // namespace dsms
