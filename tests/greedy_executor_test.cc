#include "exec/greedy_memory_executor.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/clock.h"
#include "core/tuple.h"
#include "graph/graph_builder.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"

namespace dsms {
namespace {

struct GreedyRig {
  explicit GreedyRig(EtsMode ets = EtsMode::kOnDemand) {
    GraphBuilder builder;
    s1 = builder.AddSource("S1", TimestampKind::kInternal);
    s2 = builder.AddSource("S2", TimestampKind::kInternal);
    f1 = builder.AddRandomDropFilter("F1", 0.5, 3);
    u = builder.AddUnion("U");
    sink = builder.AddSink("OUT");
    builder.Connect(s1, f1);
    builder.Connect(f1, u);
    builder.Connect(s2, u);
    builder.Connect(u, sink);
    auto built = builder.Build();
    DSMS_CHECK_OK(built.status());
    graph = std::move(built).value();
    ExecConfig config;
    config.ets.mode = ets;
    executor =
        std::make_unique<GreedyMemoryExecutor>(graph.get(), &clock, config);
  }

  std::unique_ptr<QueryGraph> graph;
  VirtualClock clock;
  Source* s1;
  Source* s2;
  RandomDropFilter* f1;
  Union* u;
  Sink* sink;
  std::unique_ptr<GreedyMemoryExecutor> executor;
};

TEST(GreedyMemoryExecutorTest, DeliversEverything) {
  GreedyRig rig;
  Simulation sim(rig.graph.get(), rig.executor.get(), &rig.clock);
  sim.AddFeed(rig.s1, std::make_unique<ConstantRateProcess>(20.0));
  sim.AddFeed(rig.s2, std::make_unique<ConstantRateProcess>(20.0));
  sim.Run(10 * kSecond);
  // S1 tuples pass the 50% filter; S2 tuples all arrive.
  EXPECT_GT(rig.sink->data_delivered(), 250u);
  EXPECT_LT(rig.sink->latency().mean_ms(), 1.0);
}

TEST(GreedyMemoryExecutorTest, OnDemandEtsViaSweep) {
  GreedyRig rig;
  rig.clock.AdvanceTo(500);
  rig.s2->Ingest({Value(int64_t{1})}, rig.clock.now());
  rig.executor->RunUntilIdle();
  EXPECT_EQ(rig.sink->data_delivered(), 1u);
  EXPECT_GE(rig.executor->ets_generated(), 1u);
}

TEST(GreedyMemoryExecutorTest, IdleWithoutWork) {
  GreedyRig rig;
  EXPECT_FALSE(rig.executor->RunStep());
  EXPECT_FALSE(rig.executor->RunStep());
}

TEST(GreedyMemoryExecutorTest, MarksBlockedUnionIdle) {
  GreedyRig rig(EtsMode::kNone);
  rig.s2->Ingest({Value(int64_t{1})}, 0);
  rig.executor->RunUntilIdle();
  const IdleWaitTracker* tracker = rig.executor->idle_tracker(rig.u->id());
  ASSERT_NE(tracker, nullptr);
  EXPECT_TRUE(tracker->blocked());
}

TEST(GreedyMemoryExecutorTest, TerminatesUnderBlockedGraph) {
  GreedyRig rig(EtsMode::kNone);
  rig.s2->Ingest({Value(int64_t{1})}, 0);
  uint64_t steps = rig.executor->RunUntilIdle();
  EXPECT_LT(steps, 50u);
}

}  // namespace
}  // namespace dsms
