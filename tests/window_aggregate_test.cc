#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "core/value.h"
#include "operators/operator.h"
#include "operators/window_aggregate.h"

namespace dsms {
namespace {

Tuple DataTuple(Timestamp ts, double v) {
  return Tuple::MakeData(ts, {Value(v)});
}

struct AggRig {
  AggRig(AggKind kind, Duration window, Duration slide)
      : op("agg", kind, /*field=*/0, window, slide) {
    op.AddInput(&in);
    op.AddOutput(&out);
  }

  std::vector<Tuple> Drain(ManualExecContext& ctx) {
    for (int guard = 0; guard < 100000; ++guard) {
      StepResult r = op.Step(ctx);
      if (!r.more) break;
    }
    std::vector<Tuple> result;
    while (!out.empty()) result.push_back(out.Pop());
    return result;
  }

  StreamBuffer in{"in"};
  StreamBuffer out{"out"};
  WindowAggregate op;
};

TEST(WindowAggregateTest, TumblingCount) {
  AggRig rig(AggKind::kCount, 100, 100);
  ManualExecContext ctx;
  rig.in.Push(DataTuple(10, 1));
  rig.in.Push(DataTuple(20, 1));
  rig.in.Push(DataTuple(150, 1));   // closes window [0,100)
  rig.in.Push(Tuple::MakePunctuation(300));  // closes [100,200) and [200,300)
  std::vector<Tuple> emitted = rig.Drain(ctx);
  std::vector<Tuple> data;
  for (Tuple& t : emitted) {
    if (t.is_data()) data.push_back(t);
  }
  ASSERT_EQ(data.size(), 3u);
  EXPECT_EQ(data[0].value(0).int64_value(), 0);    // window start 0
  EXPECT_DOUBLE_EQ(data[0].value(1).AsDouble(), 2);  // two tuples
  EXPECT_EQ(data[0].timestamp(), 100);             // window end
  EXPECT_DOUBLE_EQ(data[1].value(1).AsDouble(), 1);  // [100,200): one tuple
  EXPECT_DOUBLE_EQ(data[2].value(1).AsDouble(), 0);  // [200,300): empty
}

TEST(WindowAggregateTest, SumAvgMinMax) {
  struct Case {
    AggKind kind;
    double expected;
  };
  for (const Case& c : {Case{AggKind::kSum, 9.0}, Case{AggKind::kAvg, 3.0},
                        Case{AggKind::kMin, 2.0}, Case{AggKind::kMax, 4.0}}) {
    AggRig rig(c.kind, 100, 100);
    ManualExecContext ctx;
    rig.in.Push(DataTuple(10, 2.0));
    rig.in.Push(DataTuple(20, 3.0));
    rig.in.Push(DataTuple(30, 4.0));
    rig.in.Push(Tuple::MakePunctuation(100));
    std::vector<Tuple> emitted = rig.Drain(ctx);
    ASSERT_FALSE(emitted.empty()) << AggKindToString(c.kind);
    ASSERT_TRUE(emitted[0].is_data());
    EXPECT_DOUBLE_EQ(emitted[0].value(1).AsDouble(), c.expected)
        << AggKindToString(c.kind);
  }
}

TEST(WindowAggregateTest, EmptyWindowSkippedForMinMaxAvg) {
  AggRig rig(AggKind::kMax, 100, 100);
  ManualExecContext ctx;
  rig.in.Push(DataTuple(10, 5.0));
  rig.in.Push(Tuple::MakePunctuation(400));  // windows [100,200),[200,300),[300,400) empty
  std::vector<Tuple> emitted = rig.Drain(ctx);
  int data = 0;
  for (const Tuple& t : emitted) {
    if (t.is_data()) ++data;
  }
  EXPECT_EQ(data, 1);  // only [0,100) emits
}

TEST(WindowAggregateTest, SlidingWindowsOverlap) {
  // window=100, slide=50: tuple at 60 belongs to [0,100) and [50,150).
  AggRig rig(AggKind::kCount, 100, 50);
  ManualExecContext ctx;
  rig.in.Push(DataTuple(60, 1));
  rig.in.Push(Tuple::MakePunctuation(200));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  std::vector<std::pair<int64_t, double>> windows;
  for (const Tuple& t : emitted) {
    if (t.is_data()) {
      windows.emplace_back(t.value(0).int64_value(), t.value(1).AsDouble());
    }
  }
  // Closable by bound 200: [0,100) count 1, [50,150) count 1, [100,200) 0.
  ASSERT_GE(windows.size(), 3u);
  EXPECT_EQ(windows[0], (std::pair<int64_t, double>{0, 1.0}));
  EXPECT_EQ(windows[1], (std::pair<int64_t, double>{50, 1.0}));
  EXPECT_EQ(windows[2], (std::pair<int64_t, double>{100, 0.0}));
}

TEST(WindowAggregateTest, DataAdvancesBoundWithoutPunctuation) {
  AggRig rig(AggKind::kCount, 100, 100);
  ManualExecContext ctx;
  rig.in.Push(DataTuple(50, 1));
  rig.Drain(ctx);
  EXPECT_EQ(rig.op.windows_emitted(), 0u);  // [0,100) not yet closable
  rig.in.Push(DataTuple(120, 1));
  rig.Drain(ctx);
  EXPECT_EQ(rig.op.windows_emitted(), 1u);  // closed by the 120 tuple
}

TEST(WindowAggregateTest, PunctuationClosesPromptly) {
  // This is the ETS payoff for aggregates: without punctuation the window
  // result waits for the next data tuple, which may be much later.
  AggRig rig(AggKind::kCount, 100, 100);
  ManualExecContext ctx;
  rig.in.Push(DataTuple(50, 1));
  rig.in.Push(Tuple::MakePunctuation(100));
  rig.Drain(ctx);
  EXPECT_EQ(rig.op.windows_emitted(), 1u);
}

TEST(WindowAggregateTest, ForwardsStrongerPunctuationBound) {
  AggRig rig(AggKind::kCount, 100, 100);
  ManualExecContext ctx;
  rig.in.Push(DataTuple(10, 1));
  rig.in.Push(Tuple::MakePunctuation(150));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  ASSERT_GE(emitted.size(), 2u);
  // After closing [0,100), the next window ends at 200: the outgoing
  // punctuation can promise 200 even though the input promised only 150.
  const Tuple& punct = emitted.back();
  ASSERT_TRUE(punct.is_punctuation());
  EXPECT_EQ(punct.timestamp(), 200);
}

TEST(WindowAggregateTest, PunctuationBoundDeduplicated) {
  AggRig rig(AggKind::kCount, 100, 100);
  ManualExecContext ctx;
  rig.in.Push(DataTuple(10, 1));
  rig.in.Push(Tuple::MakePunctuation(110));
  rig.in.Push(Tuple::MakePunctuation(120));
  rig.in.Push(Tuple::MakePunctuation(130));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  int puncts = 0;
  for (const Tuple& t : emitted) {
    if (t.is_punctuation()) ++puncts;
  }
  EXPECT_EQ(puncts, 1);  // one outgoing bound at 200, not three
}

TEST(WindowAggregateTest, StampsLatentInput) {
  AggRig rig(AggKind::kCount, 100, 100);
  ManualExecContext ctx(60);
  rig.in.Push(Tuple::MakeLatent({Value(1.0)}));
  rig.op.Step(ctx);
  ctx.set_now(160);
  rig.in.Push(Tuple::MakeLatent({Value(1.0)}));
  rig.op.Step(ctx);
  // First tuple stamped 60 -> window [0,100); second stamped 160 closed it.
  EXPECT_EQ(rig.op.windows_emitted(), 1u);
}

TEST(WindowAggregateTest, CountAggregateAlwaysWantsEtsOnceStarted) {
  AggRig rig(AggKind::kCount, 100, 100);
  ManualExecContext ctx;
  EXPECT_FALSE(rig.op.WantsEts());
  rig.in.Push(DataTuple(10, 1));
  rig.Drain(ctx);
  EXPECT_TRUE(rig.op.WantsEts());  // [0,100) open with data
  EXPECT_EQ(rig.op.EtsReleaseBound(), 100);
  rig.in.Push(Tuple::MakePunctuation(100));
  rig.Drain(ctx);
  // Count emits empty windows too: the next boundary is still awaited.
  EXPECT_TRUE(rig.op.WantsEts());
  EXPECT_EQ(rig.op.EtsReleaseBound(), 200);
}

TEST(WindowAggregateTest, MaxAggregateWantsEtsOnlyWithData) {
  AggRig rig(AggKind::kMax, 100, 100);
  ManualExecContext ctx;
  rig.in.Push(DataTuple(10, 1));
  rig.Drain(ctx);
  EXPECT_TRUE(rig.op.WantsEts());
  EXPECT_EQ(rig.op.EtsReleaseBound(), 100);
  rig.in.Push(Tuple::MakePunctuation(100));
  rig.Drain(ctx);
  // Empty windows produce nothing for max: no bound is awaited.
  EXPECT_FALSE(rig.op.WantsEts());
  EXPECT_EQ(rig.op.EtsReleaseBound(), kMaxTimestamp);
}

TEST(WindowAggregateTest, NoSpuriousEarlyWindows) {
  // First tuple at a large timestamp must not trigger emission of thousands
  // of empty windows from time zero.
  AggRig rig(AggKind::kCount, 100, 100);
  ManualExecContext ctx;
  rig.in.Push(DataTuple(1000000, 1));
  rig.in.Push(Tuple::MakePunctuation(1000100));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  int data = 0;
  for (const Tuple& t : emitted) {
    if (t.is_data()) ++data;
  }
  EXPECT_EQ(data, 1);
}

TEST(WindowAggregateTest, RejectsBadGeometry) {
  EXPECT_DEATH(WindowAggregate("a", AggKind::kCount, 0, 0, 1), "");
  EXPECT_DEATH(WindowAggregate("a", AggKind::kCount, 0, 100, 0), "");
  EXPECT_DEATH(WindowAggregate("a", AggKind::kCount, 0, 100, 200), "");
}

TEST(AggKindTest, Names) {
  EXPECT_STREQ(AggKindToString(AggKind::kCount), "count");
  EXPECT_STREQ(AggKindToString(AggKind::kAvg), "avg");
}

}  // namespace
}  // namespace dsms
