// Pins the zero-allocation steady state: once a StreamBuffer's ring has
// grown to its high-water mark, Push/Pop of tuples with <= kInlineCapacity
// numeric values must not touch the global allocator. Verified with
// counting replacements of ::operator new / ::operator delete, so this test
// lives in its own binary.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/inlined_values.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "core/value.h"

namespace {
// Plain (not atomic) counter: these tests are single-threaded, and an atomic
// would serialize gtest internals for no benefit.
uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  ++g_alloc_count;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dsms {
namespace {

Tuple SmallTuple(Timestamp ts) {
  return Tuple::MakeData(
      ts, {Value(int64_t{42}), Value(3.14), Value(true), Value(ts)});
}

TEST(ZeroAllocTest, SmallTupleConstructionDoesNotAllocate) {
  uint64_t before = g_alloc_count;
  Tuple t = SmallTuple(123);
  Tuple moved = std::move(t);
  Tuple punct = Tuple::MakePunctuation(456);
  uint64_t after = g_alloc_count;
  EXPECT_EQ(after - before, 0u) << "tuple with 4 numeric values allocated";
  EXPECT_EQ(moved.values().size(), 4u);
  EXPECT_TRUE(punct.is_punctuation());
}

TEST(ZeroAllocTest, SteadyStatePushPopDoesNotAllocate) {
  StreamBuffer buffer("hot");  // name fits in SSO; ring starts empty

  // Warmup: grow the ring to its high-water mark (depth 64) and run a few
  // full cycles so every one-time allocation has happened.
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (Timestamp t = 0; t < 64; ++t) buffer.Push(SmallTuple(t));
    while (!buffer.empty()) buffer.Pop();
  }

  uint64_t before = g_alloc_count;
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (Timestamp t = 0; t < 64; ++t) buffer.Push(SmallTuple(t));
    while (!buffer.empty()) {
      Tuple t = buffer.Pop();
      ASSERT_EQ(t.values().size(), 4u);
    }
  }
  uint64_t after = g_alloc_count;
  EXPECT_EQ(after - before, 0u)
      << "steady-state Push/Pop allocated " << (after - before) << " times";
}

TEST(ZeroAllocTest, SteadyStateWithOccupiedQueueDoesNotAllocate) {
  StreamBuffer buffer("hot");
  // Keep the queue half full the whole time so head_ wraps the ring.
  for (Timestamp t = 0; t < 32; ++t) buffer.Push(SmallTuple(t));
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (Timestamp t = 0; t < 16; ++t) buffer.Push(SmallTuple(t));
    for (int i = 0; i < 16; ++i) buffer.Pop();
  }

  uint64_t before = g_alloc_count;
  for (int cycle = 0; cycle < 200; ++cycle) {
    buffer.Push(SmallTuple(cycle));
    buffer.Pop();
  }
  EXPECT_EQ(g_alloc_count - before, 0u);
}

TEST(ZeroAllocTest, CountersSanityCheckHookIsLive) {
  // If the replacement operator new were not linked in, every assertion
  // above would pass vacuously. Prove the hook observes allocations.
  uint64_t before = g_alloc_count;
  auto* v = new std::vector<int>(1000);
  uint64_t after = g_alloc_count;
  delete v;
  EXPECT_GT(after, before);
}

TEST(ZeroAllocTest, SpilledTupleAllocatesExactlyOnce) {
  // 5 values exceed the inline capacity: exactly one heap block for the
  // spilled value array, nothing else.
  uint64_t before = g_alloc_count;
  Tuple t = Tuple::MakeData(1, {Value(int64_t{1}), Value(int64_t{2}),
                                Value(int64_t{3}), Value(int64_t{4}),
                                Value(int64_t{5})});
  uint64_t after = g_alloc_count;
  EXPECT_EQ(after - before, 1u);
  EXPECT_EQ(t.values().size(), 5u);
  // Moving a spilled tuple steals the heap block: no further allocations.
  before = g_alloc_count;
  Tuple moved = std::move(t);
  EXPECT_EQ(g_alloc_count - before, 0u);
  EXPECT_EQ(moved.values().size(), 5u);
}

}  // namespace
}  // namespace dsms
