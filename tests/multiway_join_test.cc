#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "core/value.h"
#include "operators/multiway_join.h"
#include "operators/operator.h"
#include "recovery/state_codec.h"

namespace dsms {
namespace {

Tuple DataTuple(Timestamp ts, int64_t key, int64_t payload) {
  return Tuple::MakeData(ts, {Value(key), Value(payload)});
}

struct MJoinRig {
  MJoinRig(int n, Duration window, MultiWayJoin::Predicate predicate,
           bool ordered = true)
      : op("mj", std::vector<Duration>(static_cast<size_t>(n), window),
           std::move(predicate), ordered) {
    for (int i = 0; i < n; ++i) {
      ins.push_back(std::make_unique<StreamBuffer>("in"));
      op.AddInput(ins.back().get());
    }
    op.AddOutput(&out);
  }

  std::vector<Tuple> Drain(ManualExecContext& ctx) {
    for (int guard = 0; guard < 100000; ++guard) {
      if (!op.Step(ctx).more) break;
    }
    std::vector<Tuple> result;
    while (!out.empty()) result.push_back(out.Pop());
    return result;
  }

  void FlushAll(Timestamp bound) {
    for (auto& in : ins) in->Push(Tuple::MakePunctuation(bound));
  }

  std::vector<std::unique_ptr<StreamBuffer>> ins;
  StreamBuffer out{"out"};
  MultiWayJoin op;
};

TEST(MultiWayJoinTest, ThreeWayMatch) {
  MJoinRig rig(3, /*window=*/100, MultiWayJoin::EquiJoin(0));
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(10, 7, 100));
  rig.ins[1]->Push(DataTuple(20, 7, 200));
  rig.ins[2]->Push(DataTuple(30, 7, 300));
  rig.FlushAll(1000);
  std::vector<Tuple> emitted = rig.Drain(ctx);
  std::vector<Tuple> data;
  for (Tuple& t : emitted) {
    if (t.is_data()) data.push_back(t);
  }
  ASSERT_EQ(data.size(), 1u);
  // Payload is the concatenation in input order.
  ASSERT_EQ(data[0].num_values(), 6);
  EXPECT_EQ(data[0].value(1).int64_value(), 100);
  EXPECT_EQ(data[0].value(3).int64_value(), 200);
  EXPECT_EQ(data[0].value(5).int64_value(), 300);
  // Result is stamped by the completing (newest) tuple.
  EXPECT_EQ(data[0].timestamp(), 30);
  EXPECT_EQ(rig.op.matches_emitted(), 1u);
}

TEST(MultiWayJoinTest, KeyMismatchNoMatch) {
  MJoinRig rig(3, 100, MultiWayJoin::EquiJoin(0));
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(10, 7, 0));
  rig.ins[1]->Push(DataTuple(20, 7, 0));
  rig.ins[2]->Push(DataTuple(30, 8, 0));  // different key
  rig.FlushAll(1000);
  for (const Tuple& t : rig.Drain(ctx)) EXPECT_TRUE(t.is_punctuation());
}

TEST(MultiWayJoinTest, WindowExcludesOldTuples) {
  MJoinRig rig(3, /*window=*/50, MultiWayJoin::EquiJoin(0));
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(10, 7, 0));
  rig.ins[1]->Push(DataTuple(20, 7, 0));
  rig.ins[2]->Push(DataTuple(100, 7, 0));  // 90 away from input 0's tuple
  rig.FlushAll(1000);
  for (const Tuple& t : rig.Drain(ctx)) EXPECT_TRUE(t.is_punctuation());
}

TEST(MultiWayJoinTest, CrossProductCounts) {
  // 2 x 3 x 1 tuples, all within windows, no predicate: 6 results when the
  // single input-2 tuple arrives... plus combinations completed earlier.
  MJoinRig rig(3, 1000, /*predicate=*/nullptr);
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(1, 0, 0));
  rig.ins[0]->Push(DataTuple(2, 0, 0));
  rig.ins[1]->Push(DataTuple(3, 0, 0));
  rig.ins[1]->Push(DataTuple(4, 0, 0));
  rig.ins[1]->Push(DataTuple(5, 0, 0));
  rig.ins[2]->Push(DataTuple(6, 0, 0));
  rig.FlushAll(10000);
  int matches = 0;
  for (const Tuple& t : rig.Drain(ctx)) {
    if (t.is_data()) ++matches;
  }
  // Every complete {in0, in1, in2} combination is emitted exactly once,
  // when its last member is processed: 2 * 3 * 1 = 6.
  EXPECT_EQ(matches, 6);
}

TEST(MultiWayJoinTest, EachCombinationEmittedOnce) {
  MJoinRig rig(3, 1000, MultiWayJoin::EquiJoin(0));
  ManualExecContext ctx;
  // Interleave arrivals; drain between pushes to force incremental probing.
  rig.ins[0]->Push(DataTuple(1, 1, 10));
  rig.Drain(ctx);
  rig.ins[1]->Push(DataTuple(2, 1, 20));
  rig.Drain(ctx);
  rig.ins[2]->Push(DataTuple(3, 1, 30));
  rig.Drain(ctx);
  rig.ins[0]->Push(DataTuple(4, 1, 11));
  rig.FlushAll(10000);
  int matches = 0;
  for (const Tuple& t : rig.Drain(ctx)) {
    if (t.is_data()) ++matches;
  }
  // {10,20,30} completed by the ts-3 tuple; {11,20,30} by the ts-4 tuple.
  EXPECT_EQ(matches, 2);
}

TEST(MultiWayJoinTest, IdleWaitsOnLaggingInput) {
  MJoinRig rig(3, 100, nullptr);
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(10, 0, 0));
  rig.ins[1]->Push(DataTuple(20, 0, 0));
  StepResult r = rig.op.Step(ctx);
  EXPECT_FALSE(r.more);
  EXPECT_TRUE(r.idle_waiting);
  EXPECT_EQ(r.blocked_input, 2);
}

TEST(MultiWayJoinTest, PunctuationPrunesWindows) {
  MJoinRig rig(3, /*window=*/50, nullptr);
  ManualExecContext ctx;
  rig.ins[0]->Push(DataTuple(10, 0, 0));
  rig.FlushAll(20);
  rig.Drain(ctx);
  EXPECT_EQ(rig.op.window_size(0), 1u);  // cutoff 20-50 < 10
  rig.FlushAll(500);
  rig.Drain(ctx);
  EXPECT_EQ(rig.op.total_window_size(), 0u);  // cutoff 450 > 10
}

TEST(MultiWayJoinTest, ForwardsWatermark) {
  MJoinRig rig(3, 100, nullptr);
  ManualExecContext ctx;
  rig.FlushAll(77);
  std::vector<Tuple> emitted = rig.Drain(ctx);
  ASSERT_FALSE(emitted.empty());
  EXPECT_TRUE(emitted.back().is_punctuation());
  EXPECT_EQ(emitted.back().timestamp(), 77);
}

TEST(MultiWayJoinTest, TwoWayAgreesWithBinaryJoinSemantics) {
  // With n=2 the multiway join degenerates to the binary window join's
  // newest-probes-stored evaluation; compare against brute force.
  Pcg32 rng(77);
  const Duration window = 60;
  std::vector<Tuple> left;
  std::vector<Tuple> right;
  Timestamp lt = 0;
  Timestamp rt = 0;
  for (int i = 0; i < 40; ++i) {
    lt += rng.NextInt(1, 30);
    left.push_back(DataTuple(lt, rng.NextInt(0, 3), 1000 + i));
    rt += rng.NextInt(1, 30);
    right.push_back(DataTuple(rt, rng.NextInt(0, 3), 2000 + i));
  }
  MJoinRig rig(2, window, MultiWayJoin::EquiJoin(0));
  ManualExecContext ctx;
  for (const Tuple& t : left) rig.ins[0]->Push(t);
  for (const Tuple& t : right) rig.ins[1]->Push(t);
  rig.FlushAll(100000);
  std::vector<std::pair<int64_t, int64_t>> actual;
  for (const Tuple& t : rig.Drain(ctx)) {
    if (t.is_data()) {
      actual.emplace_back(t.value(1).int64_value(),
                          t.value(3).int64_value());
    }
  }
  std::vector<std::pair<int64_t, int64_t>> expected;
  for (const Tuple& l : left) {
    for (const Tuple& r : right) {
      Timestamp older = std::min(l.timestamp(), r.timestamp());
      Timestamp newer = std::max(l.timestamp(), r.timestamp());
      if (newer - older <= window && l.value(0) == r.value(0)) {
        expected.emplace_back(l.value(1).int64_value(),
                              r.value(1).int64_value());
      }
    }
  }
  std::sort(actual.begin(), actual.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(actual, expected);
}

TEST(MultiWayJoinUnorderedTest, StampsAndMatches) {
  MJoinRig rig(3, 1000, nullptr, /*ordered=*/false);
  ManualExecContext ctx(100);
  rig.ins[0]->Push(Tuple::MakeLatent({Value(int64_t{1})}));
  rig.op.Step(ctx);
  ctx.set_now(200);
  rig.ins[1]->Push(Tuple::MakeLatent({Value(int64_t{2})}));
  rig.op.Step(ctx);
  ctx.set_now(300);
  rig.ins[2]->Push(Tuple::MakeLatent({Value(int64_t{3})}));
  rig.op.Step(ctx);
  ASSERT_EQ(rig.out.size(), 1u);
  EXPECT_EQ(rig.out.Front().timestamp(), 300);
  EXPECT_EQ(rig.out.Front().num_values(), 3);
}

TEST(MultiWayJoinTest, OutputTimestampsNondecreasing) {
  MJoinRig rig(3, 200, nullptr);
  ManualExecContext ctx;
  Pcg32 rng(5);
  Timestamp ts[3] = {0, 0, 0};
  for (int i = 0; i < 60; ++i) {
    int input = static_cast<int>(rng.NextInt(0, 2));
    ts[input] += rng.NextInt(1, 50);
    rig.ins[static_cast<size_t>(input)]->Push(
        DataTuple(ts[input], 0, i));
  }
  rig.FlushAll(1000000);
  Timestamp previous = kMinTimestamp;
  for (const Tuple& t : rig.Drain(ctx)) {
    EXPECT_GE(t.timestamp(), previous);
    previous = t.timestamp();
  }
}

TEST(MultiWayJoinTest, ArityEnforced) {
  EXPECT_DEATH(MultiWayJoin("m", {100}, nullptr), "");
  MultiWayJoin join("m", {100, 100, 100}, nullptr);
  EXPECT_EQ(join.min_inputs(), 3);
  EXPECT_EQ(join.max_inputs(), 3);
  EXPECT_TRUE(join.is_iwp());
}

// --- state-store integration: indexed probes, adaptive order, save/load ---

TEST(MultiWayJoinTest, EquiFieldEnablesIndexedProbes) {
  MJoinRig rig(3, 1000, MultiWayJoin::EquiJoin(0));
  rig.op.set_equi_field(0);
  ManualExecContext ctx;
  for (int i = 0; i < 40; ++i) {
    rig.ins[0]->Push(DataTuple(10 * i, i % 3, i));
    rig.ins[1]->Push(DataTuple(10 * i + 2, i % 3, i));
    rig.ins[2]->Push(DataTuple(10 * i + 4, i % 3, i));
  }
  rig.FlushAll(2000);
  uint64_t matches = 0;
  for (const Tuple& t : rig.Drain(ctx)) {
    if (t.is_data()) ++matches;
  }
  EXPECT_GT(matches, 0u);
  uint64_t probes = 0;
  for (int i = 0; i < 3; ++i) probes += rig.op.state_table(i).index_probes();
  EXPECT_GT(probes, 0u);
}

TEST(MultiWayJoinTest, AdaptiveOrderMatchesStaticOutput) {
  // The probe order only changes which window is enumerated first; the set
  // of match combinations (and each result's payload) must be identical.
  auto run = [](bool adaptive) {
    MJoinRig rig(3, 2000, MultiWayJoin::EquiJoin(0));
    rig.op.set_equi_field(0);
    rig.op.set_adaptive(adaptive);
    ManualExecContext ctx;
    Pcg32 rng(11);
    Timestamp ts[3] = {0, 0, 0};
    std::vector<std::string> lines;
    // Skewed selectivities: input 2's keys rarely match.
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 10; ++i) {
        int input = static_cast<int>(rng.NextInt(0, 2));
        int64_t key = input == 2 ? rng.NextInt(0, 40) : rng.NextInt(0, 2);
        ts[input] += rng.NextInt(1, 20);
        rig.ins[static_cast<size_t>(input)]->Push(
            DataTuple(ts[input], key, round * 100 + i));
      }
      rig.FlushAll((round + 1) * 300);
      for (const Tuple& t : rig.Drain(ctx)) {
        if (t.is_data()) lines.push_back(t.ToString());
      }
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(MultiWayJoinTest, AdaptiveReordersTowardSelectiveInputs) {
  MJoinRig rig(3, 5000, MultiWayJoin::EquiJoin(0));
  rig.op.set_equi_field(0);
  ManualExecContext ctx;
  // Input 0's window is fat and unselective (every probe returns many
  // rows); input 2's is empty. After enough punctuations the adaptive
  // order must probe input 0 last.
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 4; ++j) {
      rig.ins[0]->Push(DataTuple(40 * i + j, /*key=*/1, j));
    }
    rig.ins[1]->Push(DataTuple(40 * i + 10, /*key=*/1, i));
    rig.FlushAll(40 * i + 20);
    (void)rig.Drain(ctx);
  }
  const std::vector<int>& order = rig.op.probe_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), 0);  // fattest window probed last
}

TEST(MultiWayJoinTest, SaveLoadRoundTripContinuesIdentically) {
  auto feed = [](MJoinRig& rig, ManualExecContext& ctx, int lo, int hi,
                 Timestamp flush) {
    for (int i = lo; i < hi; ++i) {
      rig.ins[0]->Push(DataTuple(10 * i, i % 3, i));
      rig.ins[1]->Push(DataTuple(10 * i + 2, i % 3, i));
      rig.ins[2]->Push(DataTuple(10 * i + 4, i % 3, i));
    }
    rig.FlushAll(flush);
    std::vector<std::string> lines;
    for (const Tuple& t : rig.Drain(ctx)) lines.push_back(t.ToString());
    return lines;
  };

  MJoinRig a(3, 500, MultiWayJoin::EquiJoin(0));
  a.op.set_equi_field(0);
  ManualExecContext actx;
  // Flush past every prefix tuple so the input buffers drain completely: a
  // checkpoint snapshots operator state; in-flight buffer contents are
  // restored separately (RestoreGraph).
  (void)feed(a, actx, 0, 30, 300);

  StateWriter w;
  a.op.SaveState(w);
  MJoinRig b(3, 500, MultiWayJoin::EquiJoin(0));
  b.op.set_equi_field(0);
  StateReader r(w.data());
  b.op.LoadState(r);
  EXPECT_EQ(b.op.total_window_size(), a.op.total_window_size());
  EXPECT_EQ(b.op.matches_emitted(), a.op.matches_emitted());
  EXPECT_EQ(b.op.probe_order(), a.op.probe_order());

  ManualExecContext bctx;
  EXPECT_EQ(feed(b, bctx, 30, 60, 100000), feed(a, actx, 30, 60, 100000));
}

TEST(MultiWayJoinTest, RestoreWithMismatchedArityDies) {
  MJoinRig a(3, 500, nullptr);
  ManualExecContext ctx;
  a.ins[0]->Push(DataTuple(10, 1, 1));
  a.FlushAll(100);
  (void)a.Drain(ctx);
  StateWriter w;
  a.op.SaveState(w);

  // A 2-input join cannot absorb a 3-input checkpoint.
  MJoinRig b(2, 500, nullptr);
  StateReader r(w.data());
  EXPECT_DEATH(b.op.LoadState(r), "");
}

}  // namespace
}  // namespace dsms
