// The ready-queue scheduler (SchedulerMode::kReadyQueue) must be execution-
// equivalent to the original full-scan work discovery, which is retained as
// SchedulerMode::kScanReference. Equivalence is checked at the strongest
// level the simulator offers: an FNV-1a digest over EVERY buffer push and
// pop of the whole run (arc id + full tuple contents, in order), plus the
// executor's step/backtrack/ETS counters, delivery counts, latency figures,
// and idle-waiting metrics.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/time.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

void ExpectTraceEquivalent(ScenarioConfig config, const std::string& label) {
  config.record_trace = true;

  ScenarioConfig reference = config;
  reference.scheduler = SchedulerMode::kScanReference;
  ScenarioConfig optimized = config;
  optimized.scheduler = SchedulerMode::kReadyQueue;

  ScenarioResult ref = RunScenario(reference);
  ScenarioResult opt = RunScenario(optimized);

  // Byte-identical tuple movement, in order, across every arc.
  EXPECT_EQ(ref.trace_events, opt.trace_events) << label;
  EXPECT_EQ(ref.trace_hash, opt.trace_hash) << label;

  // Identical executor accounting (steps by kind, backtracks, ETS, scans).
  EXPECT_EQ(ref.exec.data_steps, opt.exec.data_steps) << label;
  EXPECT_EQ(ref.exec.punctuation_steps, opt.exec.punctuation_steps) << label;
  EXPECT_EQ(ref.exec.empty_steps, opt.exec.empty_steps) << label;
  EXPECT_EQ(ref.exec.backtracks, opt.exec.backtracks) << label;
  EXPECT_EQ(ref.exec.backtrack_hops, opt.exec.backtrack_hops) << label;
  EXPECT_EQ(ref.exec.ets_generated, opt.exec.ets_generated) << label;
  EXPECT_EQ(ref.exec.idle_returns, opt.exec.idle_returns) << label;
  EXPECT_EQ(ref.exec.work_scans, opt.exec.work_scans) << label;
  EXPECT_TRUE(ref.exec == opt.exec) << label;

  // Identical headline metrics.
  EXPECT_EQ(ref.tuples_delivered, opt.tuples_delivered) << label;
  EXPECT_DOUBLE_EQ(ref.mean_latency_ms, opt.mean_latency_ms) << label;
  EXPECT_DOUBLE_EQ(ref.max_latency_ms, opt.max_latency_ms) << label;
  EXPECT_EQ(ref.peak_queue_total, opt.peak_queue_total) << label;
  EXPECT_EQ(ref.peak_queue_data, opt.peak_queue_data) << label;
  EXPECT_DOUBLE_EQ(ref.idle_fraction, opt.idle_fraction) << label;
  EXPECT_EQ(ref.blocked_intervals, opt.blocked_intervals) << label;
  EXPECT_EQ(ref.ets_generated, opt.ets_generated) << label;
  EXPECT_EQ(ref.punctuation_eliminated, opt.punctuation_eliminated) << label;
  EXPECT_EQ(ref.order_violations, opt.order_violations) << label;
  EXPECT_EQ(ref.buffer_order_violations, opt.buffer_order_violations) << label;

  // The run should have actually moved tuples, or the check is vacuous.
  EXPECT_GT(ref.trace_events, 0u) << label;
}

ScenarioConfig ShortConfig(ScenarioKind kind) {
  ScenarioConfig config;
  config.kind = kind;
  config.horizon = 120 * kSecond;
  config.warmup = 10 * kSecond;
  if (kind == ScenarioKind::kPeriodicEts) config.heartbeat_rate = 10.0;
  return config;
}

// The same (kind x shape) matrix scenario_test.cc sweeps, for each executor.
using SweepParam = std::tuple<int, int, int>;

class TraceEquivalenceSweep : public ::testing::TestWithParam<SweepParam> {};

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  static const char* kKinds[] = {"NoEts", "Periodic", "OnDemand", "Latent"};
  static const char* kExecs[] = {"Dfs", "RoundRobin", "Greedy"};
  static const char* kShapes[] = {"Union", "Join", "Aggregate"};
  return std::string(kKinds[std::get<0>(info.param)]) +
         kExecs[std::get<1>(info.param)] + kShapes[std::get<2>(info.param)];
}

TEST_P(TraceEquivalenceSweep, ReadyQueueMatchesScanReference) {
  auto [kind, executor, shape] = GetParam();
  ScenarioConfig config = ShortConfig(static_cast<ScenarioKind>(kind));
  config.executor = static_cast<ExecutorKind>(executor);
  config.shape = static_cast<QueryShape>(shape);
  ExpectTraceEquivalent(
      config, std::string(ScenarioKindToString(config.kind)) + " exec=" +
                  std::to_string(executor) + " shape=" +
                  std::to_string(shape));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraceEquivalenceSweep,
    ::testing::Combine(::testing::Range(0, 4),  // ScenarioKind A-D
                       ::testing::Range(0, 3),  // Dfs/RoundRobin/Greedy
                       ::testing::Range(0, 3)),  // Union/Join/Aggregate
    SweepName);

TEST(TraceEquivalenceTest, ExternalTimestampsWithSkew) {
  for (int executor = 0; executor < 3; ++executor) {
    ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
    config.executor = static_cast<ExecutorKind>(executor);
    config.ts_kind = TimestampKind::kExternal;
    config.skew_bound = 100 * kMillisecond;
    ExpectTraceEquivalent(config,
                          "external exec=" + std::to_string(executor));
  }
}

TEST(TraceEquivalenceTest, BurstyArrivals) {
  for (int executor = 0; executor < 3; ++executor) {
    ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
    config.executor = static_cast<ExecutorKind>(executor);
    config.arrivals = ArrivalKind::kBursty;
    ExpectTraceEquivalent(config, "bursty exec=" + std::to_string(executor));
  }
}

TEST(TraceEquivalenceTest, NaryFanInUnion) {
  for (int executor = 0; executor < 3; ++executor) {
    ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
    config.executor = static_cast<ExecutorKind>(executor);
    config.num_slow_streams = 3;
    ExpectTraceEquivalent(config, "n-ary exec=" + std::to_string(executor));
  }
}

TEST(TraceEquivalenceTest, StrictUnionWithoutTsmRegisters) {
  for (int executor = 0; executor < 3; ++executor) {
    ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
    config.executor = static_cast<ExecutorKind>(executor);
    config.use_tsm_registers = false;
    ExpectTraceEquivalent(config, "strict exec=" + std::to_string(executor));
  }
}

TEST(TraceEquivalenceTest, CoarseGranularityAndSmallQuantum) {
  ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
  config.executor = ExecutorKind::kRoundRobin;
  config.rr_quantum = 1;
  config.timestamp_granularity = 100 * kMillisecond;
  ExpectTraceEquivalent(config, "coarse rr_quantum=1");
}

/// Columnar batch mode must preserve the scheduler equivalence: with the
/// same batch size on both sides, the ready-queue scheduler still replays
/// the reference scan byte for byte — including the batch counters, the
/// DrainIntoBatch buffer events, and the kBatchDrain cost charges.
/// (Batch-vs-scalar equivalence is a different contract with a different
/// oracle; see tests/batch_exec_test.cc.)
TEST(TraceEquivalenceTest, BatchModeKeepsSchedulerEquivalence) {
  for (size_t batch : {size_t{1}, size_t{7}, size_t{256}}) {
    for (int shape = 0; shape < 3; ++shape) {
      for (int executor = 0; executor < 2; ++executor) {  // Dfs, RoundRobin
        ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
        config.shape = static_cast<QueryShape>(shape);
        config.executor = static_cast<ExecutorKind>(executor);
        config.batch_size = batch;
        ExpectTraceEquivalent(config,
                              "batch=" + std::to_string(batch) + " shape=" +
                                  std::to_string(shape) + " exec=" +
                                  std::to_string(executor));
      }
    }
  }
}

// --- Sharded execution -------------------------------------------------------

/// Deterministic sharded execution (ExecConfig::shards > 1 with
/// ShardMode::kDeterministic) must replicate the single-shard DFS schedule
/// byte for byte: same buffer-event digest, same sink digest, identical
/// executor accounting. Only the shard bookkeeping (shards_used, hops,
/// epochs) is allowed to differ from the scalar run.
TEST(TraceEquivalenceTest, DeterministicShardsMatchSingleShardOracle) {
  for (int kind : {0, 2, 3}) {  // NoEts, OnDemand, Latent
    for (int shape = 0; shape < 3; ++shape) {
      ScenarioConfig base = ShortConfig(static_cast<ScenarioKind>(kind));
      base.shape = static_cast<QueryShape>(shape);
      base.record_trace = true;
      ScenarioResult oracle = RunScenario(base);
      ASSERT_GT(oracle.trace_events, 0u);

      for (int shards : {2, 4}) {
        ScenarioConfig config = base;
        config.shards = shards;
        ScenarioResult result = RunScenario(config);
        const std::string label = "kind=" + std::to_string(kind) +
                                  " shape=" + std::to_string(shape) +
                                  " shards=" + std::to_string(shards);
        EXPECT_EQ(result.trace_events, oracle.trace_events) << label;
        EXPECT_EQ(result.trace_hash, oracle.trace_hash) << label;
        EXPECT_EQ(result.sink_digest, oracle.sink_digest) << label;
        EXPECT_TRUE(result.exec == oracle.exec) << label;
        EXPECT_EQ(result.tuples_delivered, oracle.tuples_delivered) << label;
        EXPECT_DOUBLE_EQ(result.mean_latency_ms, oracle.mean_latency_ms)
            << label;
        EXPECT_EQ(result.peak_queue_total, oracle.peak_queue_total) << label;
        EXPECT_EQ(result.order_violations, 0u) << label;
        EXPECT_EQ(result.shards_used, static_cast<uint64_t>(shards)) << label;
        EXPECT_GT(result.shard_epochs, 0u) << label;
      }
    }
  }
}

/// The ready-queue/scan-reference equivalence contract extends to sharded
/// execution: per-shard ready trackers combine into the same global
/// first-candidate choice the O(n) scan makes.
TEST(TraceEquivalenceTest, ShardedSchedulerEquivalence) {
  for (int shards : {2, 4}) {
    for (int shape = 0; shape < 3; ++shape) {
      ScenarioConfig config = ShortConfig(ScenarioKind::kOnDemandEts);
      config.shape = static_cast<QueryShape>(shape);
      config.shards = shards;
      ExpectTraceEquivalent(config, "sharded shards=" +
                                        std::to_string(shards) + " shape=" +
                                        std::to_string(shape));
    }
  }
}

/// Sharding composes with the harder single-shard regimes: external
/// timestamps with skew, bursty arrivals, a wide fan-in, and the strict
/// union without TSM registers all stay byte-identical at shards=4.
TEST(TraceEquivalenceTest, ShardedMatchesOracleUnderHardRegimes) {
  for (int variant = 0; variant < 4; ++variant) {
    ScenarioConfig base = ShortConfig(ScenarioKind::kOnDemandEts);
    base.record_trace = true;
    switch (variant) {
      case 0:
        base.ts_kind = TimestampKind::kExternal;
        base.skew_bound = 100 * kMillisecond;
        break;
      case 1:
        base.arrivals = ArrivalKind::kBursty;
        break;
      case 2:
        base.num_slow_streams = 3;
        break;
      case 3:
        base.use_tsm_registers = false;
        break;
    }
    ScenarioResult oracle = RunScenario(base);

    ScenarioConfig config = base;
    config.shards = 4;
    ScenarioResult result = RunScenario(config);
    const std::string label = "variant=" + std::to_string(variant);
    EXPECT_EQ(result.trace_hash, oracle.trace_hash) << label;
    EXPECT_EQ(result.trace_events, oracle.trace_events) << label;
    EXPECT_EQ(result.sink_digest, oracle.sink_digest) << label;
    EXPECT_TRUE(result.exec == oracle.exec) << label;
    EXPECT_EQ(result.tuples_delivered, oracle.tuples_delivered) << label;
  }
}

}  // namespace
}  // namespace dsms
