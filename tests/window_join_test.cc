#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "core/value.h"
#include "operators/operator.h"
#include "operators/window_join.h"
#include "recovery/state_codec.h"

namespace dsms {
namespace {

Tuple DataTuple(Timestamp ts, int64_t v) {
  return Tuple::MakeData(ts, {Value(v)});
}

struct JoinRig {
  JoinRig(Duration left_window, Duration right_window,
          WindowJoin::Predicate predicate = nullptr, bool ordered = true)
      : op("j", left_window, right_window, std::move(predicate), ordered) {
    op.AddInput(&left);
    op.AddInput(&right);
    op.AddOutput(&out);
  }

  std::vector<Tuple> Drain(ManualExecContext& ctx) {
    for (int guard = 0; guard < 100000; ++guard) {
      StepResult r = op.Step(ctx);
      if (!r.more) break;
    }
    std::vector<Tuple> result;
    while (!out.empty()) result.push_back(out.Pop());
    return result;
  }

  StreamBuffer left{"L"};
  StreamBuffer right{"R"};
  StreamBuffer out{"out"};
  WindowJoin op;
};

TEST(WindowJoinTest, MatchesWithinWindow) {
  JoinRig rig(100, 100);
  ManualExecContext ctx;
  rig.left.Push(DataTuple(10, 1));
  rig.right.Push(DataTuple(50, 2));   // within 100 of 10
  rig.left.Push(Tuple::MakePunctuation(1000));
  rig.right.Push(Tuple::MakePunctuation(1000));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  std::vector<Tuple> data;
  for (Tuple& t : emitted) {
    if (t.is_data()) data.push_back(std::move(t));
  }
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0].num_values(), 2);
  EXPECT_EQ(data[0].value(0).int64_value(), 1);  // left values first
  EXPECT_EQ(data[0].value(1).int64_value(), 2);
  EXPECT_EQ(data[0].timestamp(), 50);  // stamped by the newly consumed tuple
}

TEST(WindowJoinTest, NoMatchOutsideWindow) {
  JoinRig rig(100, 100);
  ManualExecContext ctx;
  rig.left.Push(DataTuple(10, 1));
  rig.right.Push(DataTuple(500, 2));  // 490 apart > 100
  rig.left.Push(Tuple::MakePunctuation(1000));
  rig.right.Push(Tuple::MakePunctuation(1000));
  for (const Tuple& t : rig.Drain(ctx)) EXPECT_TRUE(t.is_punctuation());
}

TEST(WindowJoinTest, AsymmetricWindows) {
  // Right window 10: a left tuple joins right tuples at most 10 older.
  // Left window 100: a right tuple joins left tuples at most 100 older.
  JoinRig rig(/*left_window=*/100, /*right_window=*/10);
  ManualExecContext ctx;
  rig.left.Push(DataTuple(50, 1));
  rig.right.Push(DataTuple(100, 2));  // left is 50 older; 50 <= 100 => match
  rig.left.Push(Tuple::MakePunctuation(1000));
  rig.right.Push(Tuple::MakePunctuation(1000));
  int matches = 0;
  for (const Tuple& t : rig.Drain(ctx)) {
    if (t.is_data()) ++matches;
  }
  EXPECT_EQ(matches, 1);

  JoinRig rig2(/*left_window=*/10, /*right_window=*/100);
  rig2.left.Push(DataTuple(50, 1));
  rig2.right.Push(DataTuple(100, 2));  // left is 50 older; 50 > 10 => no match
  rig2.left.Push(Tuple::MakePunctuation(1000));
  rig2.right.Push(Tuple::MakePunctuation(1000));
  for (const Tuple& t : rig2.Drain(ctx)) EXPECT_TRUE(t.is_punctuation());
}

TEST(WindowJoinTest, EquiJoinPredicate) {
  JoinRig rig(1000, 1000, WindowJoin::EquiJoin(0, 0));
  ManualExecContext ctx;
  rig.left.Push(DataTuple(10, 7));
  rig.right.Push(DataTuple(20, 7));   // equal key -> match
  rig.left.Push(DataTuple(30, 8));
  rig.right.Push(DataTuple(40, 9));   // no partner
  rig.left.Push(Tuple::MakePunctuation(2000));
  rig.right.Push(Tuple::MakePunctuation(2000));
  int matches = 0;
  for (const Tuple& t : rig.Drain(ctx)) {
    if (t.is_data()) {
      ++matches;
      EXPECT_EQ(t.value(0).int64_value(), t.value(1).int64_value());
    }
  }
  EXPECT_EQ(matches, 1);
  EXPECT_EQ(rig.op.matches_emitted(), 1u);
}

TEST(WindowJoinTest, IdleWaitsOnEmptyInput) {
  JoinRig rig(100, 100);
  ManualExecContext ctx;
  rig.left.Push(DataTuple(10, 1));
  StepResult r = rig.op.Step(ctx);
  EXPECT_FALSE(r.more);
  EXPECT_TRUE(r.idle_waiting);
  EXPECT_EQ(r.blocked_input, 1);
}

TEST(WindowJoinTest, PunctuationExpiresOppositeWindow) {
  JoinRig rig(100, 100);
  ManualExecContext ctx;
  rig.right.Push(DataTuple(10, 1));
  rig.right.Push(DataTuple(20, 2));
  rig.left.Push(Tuple::MakePunctuation(15));
  rig.Drain(ctx);
  // The 10-tuple enters W(right); the punctuation at 15 is absorbed but its
  // cutoff (15-100 < 0) expires nothing. The 20-tuple stays buffered: left
  // tuples in (15, 20) may still arrive.
  EXPECT_EQ(rig.op.window_size(1), 1u);
  rig.left.Push(Tuple::MakePunctuation(500));
  rig.Drain(ctx);
  // Bound 500 releases the 20-tuple into the window, then cutoff
  // 500-100=400 expires everything: no future left tuple can match.
  EXPECT_EQ(rig.op.window_size(1), 0u);
}

TEST(WindowJoinTest, DataExpiresOppositeWindow) {
  JoinRig rig(100, 100);
  ManualExecContext ctx;
  rig.right.Push(DataTuple(10, 1));
  rig.left.Push(DataTuple(10, 5));
  rig.Drain(ctx);  // both inserted into their windows
  EXPECT_EQ(rig.op.window_size(0), 1u);
  EXPECT_EQ(rig.op.window_size(1), 1u);
  rig.left.Push(DataTuple(400, 6));
  rig.right.Push(Tuple::MakePunctuation(400));
  rig.Drain(ctx);
  // The left tuple at 400 expired the right window (cutoff 300).
  EXPECT_EQ(rig.op.window_size(1), 0u);
}

TEST(WindowJoinTest, EmitsPunctuationWhenNoDataAtTau) {
  // Figure 6: "If neither A nor B contain an input data tuple with
  // timestamp τ, add to the output a punctuation tuple with timestamp τ."
  JoinRig rig(100, 100);
  ManualExecContext ctx;
  rig.left.Push(Tuple::MakePunctuation(40));
  rig.right.Push(Tuple::MakePunctuation(60));
  std::vector<Tuple> emitted = rig.Drain(ctx);
  ASSERT_FALSE(emitted.empty());
  EXPECT_TRUE(emitted.back().is_punctuation());
  EXPECT_EQ(emitted.back().timestamp(), 40);
}

TEST(WindowJoinTest, SimultaneousTuplesJoinBothWays) {
  JoinRig rig(100, 100);
  ManualExecContext ctx;
  rig.left.Push(DataTuple(10, 1));
  rig.right.Push(DataTuple(10, 2));
  rig.left.Push(Tuple::MakePunctuation(1000));
  rig.right.Push(Tuple::MakePunctuation(1000));
  int matches = 0;
  for (const Tuple& t : rig.Drain(ctx)) {
    if (t.is_data()) ++matches;
  }
  EXPECT_EQ(matches, 1);  // the pair matches exactly once
}

TEST(WindowJoinTest, PeakWindowSizeTracked) {
  JoinRig rig(1000, 1000);
  ManualExecContext ctx;
  for (int i = 0; i < 5; ++i) rig.left.Push(DataTuple(i, i));
  for (int i = 0; i < 5; ++i) rig.right.Push(DataTuple(i, i));
  rig.Drain(ctx);
  EXPECT_GE(rig.op.peak_window_size(), 5u);
}

TEST(WindowJoinUnorderedTest, StampsLatentTuples) {
  JoinRig rig(1000, 1000, nullptr, /*ordered=*/false);
  ManualExecContext ctx(500);
  rig.left.Push(Tuple::MakeLatent({Value(int64_t{1})}));
  rig.op.Step(ctx);
  ctx.set_now(600);
  rig.right.Push(Tuple::MakeLatent({Value(int64_t{2})}));
  rig.op.Step(ctx);
  ASSERT_EQ(rig.out.size(), 1u);
  const Tuple& match = rig.out.Front();
  EXPECT_EQ(match.timestamp(), 600);  // stamped at consumption
  EXPECT_EQ(match.value(0).int64_value(), 1);
  EXPECT_EQ(match.value(1).int64_value(), 2);
}

TEST(WindowJoinUnorderedTest, NeverIdleWaits) {
  JoinRig rig(1000, 1000, nullptr, false);
  ManualExecContext ctx;
  rig.left.Push(Tuple::MakeLatent({Value(int64_t{1})}));
  StepResult r = rig.op.Step(ctx);
  EXPECT_TRUE(r.processed_data);
  EXPECT_FALSE(r.idle_waiting);
}

/// Reference implementation: brute-force nested loop with the symmetric
/// band-join condition.
std::vector<std::pair<int64_t, int64_t>> ReferenceJoin(
    const std::vector<Tuple>& left, const std::vector<Tuple>& right,
    Duration left_window, Duration right_window) {
  std::vector<std::pair<int64_t, int64_t>> matches;
  for (const Tuple& l : left) {
    for (const Tuple& r : right) {
      Timestamp lt = l.timestamp();
      Timestamp rt = r.timestamp();
      bool ok = (lt >= rt) ? (lt - rt) <= right_window
                           : (rt - lt) <= left_window;
      if (ok) matches.emplace_back(l.value(0).int64_value(),
                                   r.value(0).int64_value());
    }
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

class WindowJoinRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowJoinRandomizedTest, AgreesWithReferenceNestedLoop) {
  Pcg32 rng(GetParam());
  const Duration left_window = 50 + rng.NextInt(0, 100);
  const Duration right_window = 50 + rng.NextInt(0, 100);

  std::vector<Tuple> left_in;
  std::vector<Tuple> right_in;
  Timestamp lt = 0;
  Timestamp rt = 0;
  for (int i = 0; i < 60; ++i) {
    lt += rng.NextInt(1, 40);
    left_in.push_back(DataTuple(lt, 1000 + i));
    rt += rng.NextInt(1, 40);
    right_in.push_back(DataTuple(rt, 2000 + i));
  }

  JoinRig rig(left_window, right_window);
  ManualExecContext ctx;
  for (const Tuple& t : left_in) rig.left.Push(t);
  for (const Tuple& t : right_in) rig.right.Push(t);
  rig.left.Push(Tuple::MakePunctuation(1000000));
  rig.right.Push(Tuple::MakePunctuation(1000000));

  std::vector<std::pair<int64_t, int64_t>> actual;
  for (const Tuple& t : rig.Drain(ctx)) {
    if (t.is_data()) {
      actual.emplace_back(t.value(0).int64_value(),
                          t.value(1).int64_value());
    }
  }
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual,
            ReferenceJoin(left_in, right_in, left_window, right_window));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowJoinRandomizedTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

TEST(WindowJoinTest, OutputTimestampsNondecreasing) {
  JoinRig rig(200, 200);
  ManualExecContext ctx;
  Pcg32 rng(99);
  Timestamp lt = 0;
  Timestamp rt = 0;
  for (int i = 0; i < 100; ++i) {
    lt += rng.NextInt(1, 30);
    rig.left.Push(DataTuple(lt, i));
    rt += rng.NextInt(1, 30);
    rig.right.Push(DataTuple(rt, i));
  }
  rig.left.Push(Tuple::MakePunctuation(100000));
  rig.right.Push(Tuple::MakePunctuation(100000));
  Timestamp previous = kMinTimestamp;
  for (const Tuple& t : rig.Drain(ctx)) {
    EXPECT_GE(t.timestamp(), previous);
    previous = t.timestamp();
  }
}

TEST(WindowJoinTest, RejectsNegativeWindows) {
  EXPECT_DEATH(WindowJoin("j", -1, 0, nullptr), "");
}

// --- state-store integration: indexed probes, save/load, restore guard ---

TEST(WindowJoinTest, EquiFieldsEnableIndexedProbes) {
  JoinRig rig(1000, 1000, WindowJoin::EquiJoin(0, 0));
  rig.op.set_equi_fields(0, 0);
  ManualExecContext ctx;
  for (int i = 0; i < 50; ++i) {
    rig.left.Push(DataTuple(10 * i, i % 3));
    rig.right.Push(DataTuple(10 * i + 5, i % 3));
  }
  rig.left.Push(Tuple::MakePunctuation(2000));
  rig.right.Push(Tuple::MakePunctuation(2000));
  uint64_t matches = 0;
  for (const Tuple& t : rig.Drain(ctx)) {
    if (t.is_data()) {
      ++matches;
      EXPECT_EQ(t.value(0).int64_value(), t.value(1).int64_value());
    }
  }
  EXPECT_GT(matches, 0u);
  // Probes went through the hash indexes, not a linear scan.
  EXPECT_GT(rig.op.state_table(0).index_probes(), 0u);
  EXPECT_GT(rig.op.state_table(1).index_probes(), 0u);
  EXPECT_GT(rig.op.state_table(0).index_hits(), 0u);
}

TEST(WindowJoinTest, IndexedOutputMatchesUnindexed) {
  // Same input with and without declared equi fields: the keyed index path
  // must emit byte-identical results in identical order.
  auto run = [](bool declare_fields) {
    JoinRig rig(500, 500, WindowJoin::EquiJoin(0, 0));
    if (declare_fields) rig.op.set_equi_fields(0, 0);
    ManualExecContext ctx;
    Pcg32 rng(7);
    Timestamp lt = 0;
    Timestamp rt = 0;
    for (int i = 0; i < 200; ++i) {
      lt += rng.NextInt(1, 20);
      rig.left.Push(Tuple::MakeData(lt, {Value(rng.NextInt(0, 5))}));
      rt += rng.NextInt(1, 20);
      rig.right.Push(Tuple::MakeData(rt, {Value(rng.NextInt(0, 5))}));
    }
    rig.left.Push(Tuple::MakePunctuation(100000));
    rig.right.Push(Tuple::MakePunctuation(100000));
    std::vector<std::string> lines;
    for (const Tuple& t : rig.Drain(ctx)) lines.push_back(t.ToString());
    return lines;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(WindowJoinTest, SaveLoadRoundTripContinuesIdentically) {
  // Feed a prefix to two rigs, checkpoint one into the other, then feed
  // the same suffix to both: emissions must match exactly.
  // The closing punctuation lies past every prefix tuple so the input
  // buffers drain completely: a checkpoint snapshots operator state, and
  // in-flight buffer contents are restored separately (RestoreGraph).
  auto feed_prefix = [](JoinRig& rig, ManualExecContext& ctx) {
    for (int i = 0; i < 30; ++i) {
      rig.left.Push(DataTuple(10 * i, i % 4));
      rig.right.Push(DataTuple(10 * i + 3, i % 4));
    }
    rig.left.Push(Tuple::MakePunctuation(300));
    rig.right.Push(Tuple::MakePunctuation(300));
    (void)rig.Drain(ctx);
  };
  JoinRig a(400, 400, WindowJoin::EquiJoin(0, 0));
  a.op.set_equi_fields(0, 0);
  ManualExecContext actx;
  feed_prefix(a, actx);

  StateWriter w;
  a.op.SaveState(w);
  JoinRig b(400, 400, WindowJoin::EquiJoin(0, 0));
  b.op.set_equi_fields(0, 0);
  StateReader r(w.data());
  b.op.LoadState(r);
  EXPECT_EQ(b.op.window_size(0), a.op.window_size(0));
  EXPECT_EQ(b.op.window_size(1), a.op.window_size(1));
  EXPECT_EQ(b.op.matches_emitted(), a.op.matches_emitted());

  ManualExecContext bctx;
  auto feed_suffix = [](JoinRig& rig, ManualExecContext& ctx) {
    for (int i = 30; i < 60; ++i) {
      rig.left.Push(DataTuple(10 * i, i % 4));
      rig.right.Push(DataTuple(10 * i + 3, i % 4));
    }
    rig.left.Push(Tuple::MakePunctuation(100000));
    rig.right.Push(Tuple::MakePunctuation(100000));
    std::vector<std::string> lines;
    for (const Tuple& t : rig.Drain(ctx)) lines.push_back(t.ToString());
    return lines;
  };
  EXPECT_EQ(feed_suffix(b, bctx), feed_suffix(a, actx));
}

TEST(WindowJoinTest, RestoreWithMismatchedWindowDies) {
  JoinRig a(400, 400, nullptr);
  ManualExecContext ctx;
  a.left.Push(DataTuple(10, 1));
  a.left.Push(Tuple::MakePunctuation(100));
  a.right.Push(Tuple::MakePunctuation(100));
  (void)a.Drain(ctx);
  StateWriter w;
  a.op.SaveState(w);

  // A checkpoint taken under one window duration cannot be restored into a
  // differently configured join: silent acceptance would corrupt replay.
  JoinRig b(500, 400, nullptr);
  StateReader r(w.data());
  EXPECT_DEATH(b.op.LoadState(r), "");
}

}  // namespace
}  // namespace dsms
